//! Minimal JSON: a value tree, a writer, and a parser.
//!
//! The exporters emit JSON *lines* — one object per line — and the
//! experiment binaries parse those lines back to build their tables, so
//! both directions live here. No external crates; the grammar supported
//! is exactly RFC 8259 minus `\u` surrogate pairs (escapes decode to
//! the BMP scalar only), which is ample for machine-generated output.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; whole values print without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Ordered map so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Integer as number.
    pub fn num(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// String value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Value as u64, if it is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Value as string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `get(key).and_then(as_u64)` — the common exporter accessor.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// `get(key).and_then(as_str)`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure: message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value occupying the whole input (surrounding
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parse a JSON-lines document: one value per non-empty line.
pub fn parse_lines(input: &str) -> Result<Vec<Json>, JsonError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse)
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek().ok_or(self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).ok_or(self.err("bad \\u scalar"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control char in string")),
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(JsonError {
                msg: "bad number",
                at: start,
            })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_parse_roundtrips() {
        let v = Json::obj([
            ("name", Json::str("pending_q")),
            ("at", Json::num(12_500)),
            (
                "values",
                Json::Arr(vec![Json::num(0), Json::num(3), Json::num(0)]),
            ),
            ("ok", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(r#" { "a" : [ 1 , { "b" : -2.5 } ] , "c" : "x" } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.str_field("c"), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{\"a\":1}x").is_err());
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let lines = "{\"a\":1}\n\n{\"a\":2}\n";
        let vs = parse_lines(lines).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].u64_field("a"), Some(2));
    }

    #[test]
    fn whole_numbers_print_without_dot() {
        assert_eq!(Json::num(42).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }
}
