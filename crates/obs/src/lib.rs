//! Observability layer: metrics registry, time series, snapshots,
//! exporters.
//!
//! The paper's evaluation (§6) is a cost accounting exercise — messages,
//! bytes, forwarding hops, link-update traffic. This crate is the
//! measurement substrate for that accounting: a dependency-free
//! per-kernel [`MetricsRegistry`] of counters and gauges, sampled on a
//! virtual-time cadence into [`TimeSeries`], merged into cluster-wide
//! [`snapshot::ClusterSnapshot`]s, and exported as JSON lines
//! ([`json`]) or a human-readable `demos-top`-style [`report`].
//!
//! Only `demos-types` is a dependency, so every layer of the system —
//! net, kernel, sim, bench — can feed it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrset;
pub mod features;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod series;
pub mod snapshot;

pub use corrset::{DeliveryEvent, DeliveryLedger};
pub use features::FeatureSet;
pub use hist::Histogram;
pub use recorder::{FlightRecorder, NodeDump, PhaseTable, Record};
pub use registry::MetricsRegistry;
pub use series::{SeriesStore, TimeSeries};
pub use snapshot::{ClusterSnapshot, MachineSnapshot};
