//! `demos-trace` — query and aggregate flight-recorder dumps.
//!
//! A dump is one or more per-node sections written by
//! [`demos_obs::recorder::FlightRecorder::dump_into`] (the simulator's
//! `Cluster::recorder_dump`, the chaos harness's `repro-*.flight`
//! artifacts). This tool merges the sections by virtual time, applies
//! filters, and prints either the matching records or percentile tables
//! over the migration phases they contain.
//!
//! ```text
//! demos-trace dump.flight                      # merged timeline
//! demos-trace dump.flight --phases             # §6 phase percentile table
//! demos-trace dump.flight --machine 3          # one node's records
//! demos-trace dump.flight --corr m0/17         # one message's journey
//! demos-trace dump.flight --kind migration --phase frozen
//! demos-trace dump.flight --tail 50            # newest 50 records
//! ```
//!
//! Exit status: 0 on success (even with zero matches), 1 on usage or
//! parse errors.

use demos_obs::recorder::{
    kind_name, merge, parse_dump, phase_by_name, render_record, NodeDump, PhaseTable, Record,
};
use std::process::ExitCode;

struct Args {
    path: String,
    machine: Option<u16>,
    corr: Option<u64>,
    kind: Option<String>,
    phase: Option<u8>,
    phases_table: bool,
    summary: bool,
    coverage: bool,
    tail: Option<usize>,
}

const USAGE: &str = "usage: demos-trace <dump-file> [options]
  --machine <N>     only records from machine N
  --corr <M/SEQ>    only records of one correlation id (e.g. 0/17)
  --kind <NAME>     only records of one kind (e.g. migration, forwarded)
  --phase <NAME>    only migration records in one phase (e.g. frozen)
  --phases          print the per-phase percentile table (p50/p90/p99/p999)
  --summary        print per-node header info and kind counts only
  --coverage        print the schedule-coverage features the dump exhibits
  --tail <N>        only the newest N records after filtering";

fn parse_corr(s: &str) -> Option<u64> {
    // Accept "m0/17", "0/17" or a raw u64.
    let s = s.strip_prefix('m').unwrap_or(s);
    if let Some((m, seq)) = s.split_once('/') {
        let m: u64 = m.parse().ok()?;
        let seq: u64 = seq.parse().ok()?;
        Some(m << 48 | (seq & 0xFFFF_FFFF_FFFF))
    } else {
        s.parse().ok()
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        machine: None,
        corr: None,
        kind: None,
        phase: None,
        phases_table: false,
        summary: false,
        coverage: false,
        tail: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--machine" => {
                args.machine = Some(
                    val("--machine")?
                        .parse()
                        .map_err(|e| format!("--machine: {e}"))?,
                )
            }
            "--corr" => {
                let raw = val("--corr")?;
                args.corr = Some(parse_corr(&raw).ok_or(format!("bad corr id: {raw}"))?)
            }
            "--kind" => args.kind = Some(val("--kind")?.to_ascii_lowercase()),
            "--phase" => {
                let raw = val("--phase")?;
                args.phase = Some(phase_by_name(&raw).ok_or(format!("unknown phase: {raw}"))?)
            }
            "--phases" => args.phases_table = true,
            "--summary" => args.summary = true,
            "--coverage" => args.coverage = true,
            "--tail" => {
                args.tail = Some(val("--tail")?.parse().map_err(|e| format!("--tail: {e}"))?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if args.path.is_empty() && !other.starts_with('-') => {
                args.path = other.to_string()
            }
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if args.path.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn keep(r: &Record, args: &Args) -> bool {
    if let Some(m) = args.machine {
        if r.machine != m {
            return false;
        }
    }
    if let Some(c) = args.corr {
        if r.a != c || r.kind == demos_obs::recorder::kind::MIGRATION {
            return false;
        }
    }
    if let Some(k) = &args.kind {
        if kind_name(r.kind) != k {
            return false;
        }
    }
    if let Some(p) = args.phase {
        if r.kind != demos_obs::recorder::kind::MIGRATION || r.arg != p {
            return false;
        }
    }
    true
}

fn summarize(dumps: &[NodeDump]) -> String {
    let mut s = String::new();
    for d in dumps {
        s.push_str(&format!(
            "m{}: {} records held (cap {}, {} recorded, {} dropped)\n",
            d.machine,
            d.records.len(),
            d.capacity,
            d.total,
            d.dropped()
        ));
    }
    // Kind counts over the merged timeline, name-ordered.
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for d in dumps {
        for r in &d.records {
            *counts.entry(kind_name(r.kind)).or_insert(0) += 1;
        }
    }
    s.push_str("kind counts:\n");
    for (k, n) in counts {
        s.push_str(&format!("  {k:<22} {n}\n"));
    }
    s
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    let bytes = std::fs::read(&args.path).map_err(|e| format!("{}: {e}", args.path))?;
    let dumps = parse_dump(&bytes)?;
    if args.summary {
        print!("{}", summarize(&dumps));
        return Ok(());
    }
    if args.coverage {
        // Record-visible coverage only: fault×phase and recovery-overlap
        // features need the schedule / episode context the ring drops.
        let set = demos_obs::features::extract_records(&dumps);
        print!("{}", demos_obs::features::render(&set));
        return Ok(());
    }
    let mut records: Vec<Record> = merge(&dumps)
        .into_iter()
        .filter(|r| keep(r, &args))
        .collect();
    if let Some(n) = args.tail {
        let skip = records.len().saturating_sub(n);
        records.drain(..skip);
    }
    if args.phases_table {
        print!("{}", PhaseTable::from_records(&records).render());
        return Ok(());
    }
    for r in &records {
        println!("{}", render_record(r));
    }
    println!("{} records", records.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_obs::recorder::{kind, pack_pid, phase};

    fn args(extra: &[&str]) -> Args {
        let mut v = vec!["dump.bin".to_string()];
        v.extend(extra.iter().map(|s| s.to_string()));
        parse_args(&v).unwrap()
    }

    #[test]
    fn corr_parses_both_forms() {
        assert_eq!(parse_corr("m2/17"), Some(2u64 << 48 | 17));
        assert_eq!(parse_corr("2/17"), Some(2u64 << 48 | 17));
        assert_eq!(parse_corr("42"), Some(42));
        assert_eq!(parse_corr("m/x"), None);
    }

    #[test]
    fn filters_compose() {
        let mig = Record {
            at: 5,
            a: pack_pid(0, 1),
            b: 0,
            c: 0,
            machine: 3,
            kind: kind::MIGRATION,
            arg: phase::FROZEN,
        };
        let fwd = Record {
            at: 6,
            a: 99,
            b: pack_pid(0, 1),
            c: 0,
            machine: 2,
            kind: kind::FORWARDED,
            arg: 0,
        };
        assert!(keep(&mig, &args(&["--machine", "3"])));
        assert!(!keep(&fwd, &args(&["--machine", "3"])));
        assert!(keep(&mig, &args(&["--phase", "frozen"])));
        assert!(!keep(&fwd, &args(&["--phase", "frozen"])));
        assert!(keep(&fwd, &args(&["--corr", "99"])));
        assert!(
            !keep(&mig, &args(&["--corr", "99"])),
            "corr never matches pid operands"
        );
        assert!(keep(&fwd, &args(&["--kind", "forwarded"])));
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["d".into(), "--phase".into(), "nope".into()]).is_err());
        assert!(parse_args(&["d".into(), "--bogus".into()]).is_err());
    }
}
