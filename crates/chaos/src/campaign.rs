//! The coverage-guided parallel campaign driver.
//!
//! A campaign runs in **rounds**. Each round derives a fixed-size batch
//! of candidate scenarios *sequentially* from the campaign RNG — corpus
//! entries and fresh generator draws at first, pool mutants once the
//! pool has members — then executes the batch across worker threads, and
//! finally folds the results back in candidate order. Because candidate
//! derivation and result folding are both sequential and the executor
//! itself is deterministic, the entire campaign — coverage set, pool
//! contents, bugs found, execution counts — is **byte-identical for any
//! `--jobs` value**. Threads only decide *who* runs a candidate, never
//! *what* runs or in what order results are accounted.
//!
//! Time budgets are enforced by the caller between rounds via the
//! `keep_going` callback (the library itself never reads a wall clock),
//! so a time-boxed run is still deterministic *per round*; determinism
//! claims across machines apply at fixed `--execs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use demos_obs::features::FeatureSet;

use crate::exec::{run_with_coverage, RunConfig, RunReport};
use crate::invariants::Violation;
use crate::mutate::mutate;
use crate::pool::Pool;
use crate::scenario::Scenario;

/// How a campaign draws fresh (non-mutant) scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Generator {
    /// [`Scenario::generate`] — the classic fault mix.
    Classic,
    /// [`Scenario::generate_recovery`] — permanent crashes, recovery on.
    Recovery,
    /// [`Scenario::generate_rare`] — the E17 rare-migration regime.
    RareClassic,
    /// [`Scenario::generate_rare_recovery`] — the E17 rare-crash regime.
    RareRecovery,
}

impl Generator {
    /// Draw the scenario for `seed`.
    pub fn scenario(self, seed: u64) -> Scenario {
        match self {
            Generator::Classic => Scenario::generate(seed),
            Generator::Recovery => Scenario::generate_recovery(seed),
            Generator::RareClassic => Scenario::generate_rare(seed),
            Generator::RareRecovery => Scenario::generate_rare_recovery(seed),
        }
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Base seed: fresh draws use `seed + counter`, candidate derivation
    /// a per-round RNG keyed off it.
    pub seed: u64,
    /// Fresh-scenario generator.
    pub generator: Generator,
    /// Ablation flags every execution runs under.
    pub fault: RunConfig,
    /// Worker threads (1 = run in the caller's thread).
    pub jobs: usize,
    /// Candidates per round. Fixed per campaign — the unit determinism
    /// is defined over.
    pub batch: usize,
    /// Hard execution ceiling; `None` = until `keep_going` says stop.
    pub max_execs: Option<u64>,
    /// Percent of post-warmup candidates drawn fresh instead of mutated
    /// (exploration floor).
    pub fresh_pct: u64,
    /// Initial corpus scenarios, executed before anything else.
    pub corpus: Vec<Scenario>,
    /// Stop at the end of the first fold that found a violation.
    pub stop_on_violation: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0,
            generator: Generator::Classic,
            fault: RunConfig::default(),
            jobs: 1,
            batch: 16,
            max_execs: None,
            fresh_pct: 20,
            corpus: Vec::new(),
            stop_on_violation: false,
        }
    }
}

/// A violating run the campaign surfaced.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// The violating scenario (pre-shrink).
    pub scenario: Scenario,
    /// What broke.
    pub violation: Violation,
    /// Campaign execution count when it was found (1-based).
    pub execs_at: u64,
    /// Trace fingerprint of the violating run.
    pub fingerprint: u64,
}

/// Everything a finished campaign learned.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Total executions performed.
    pub execs: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Union coverage over every execution.
    pub coverage: FeatureSet,
    /// The corpus pool (clean, feature-novel scenarios).
    pub pool: Pool,
    /// Violations found, in discovery order.
    pub bugs: Vec<FoundBug>,
}

impl CampaignReport {
    /// Deterministic digest of the campaign's observable outcome —
    /// coverage, pool scenarios, bugs. Two campaigns with the same
    /// config and `--execs` must agree on this for every `--jobs`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.coverage.to_text().as_bytes());
        for e in self.pool.entries() {
            eat(e.scenario.to_text().as_bytes());
            eat(&e.fingerprint.to_le_bytes());
        }
        for b in &self.bugs {
            eat(b.scenario.to_text().as_bytes());
            eat(b.violation.slug().as_bytes());
            eat(&b.execs_at.to_le_bytes());
            eat(&b.fingerprint.to_le_bytes());
        }
        eat(&self.execs.to_le_bytes());
        h
    }
}

/// One candidate awaiting execution.
struct Candidate {
    scenario: Scenario,
    origin: String,
}

/// Run a coverage-guided campaign. `keep_going` is polled between
/// rounds; return `false` to stop (the wall-clock budget lives in the
/// caller).
pub fn campaign(cfg: &CampaignConfig, keep_going: &(dyn Fn() -> bool + Sync)) -> CampaignReport {
    let mut pool = Pool::new();
    let mut coverage = FeatureSet::new();
    let mut bugs: Vec<FoundBug> = Vec::new();
    let mut execs = 0u64;
    let mut rounds = 0u64;
    let mut fresh_counter = 0u64;

    'campaign: loop {
        if !keep_going() {
            break;
        }
        let remaining = match cfg.max_execs {
            Some(max) if execs >= max => break,
            Some(max) => (max - execs) as usize,
            None => usize::MAX,
        };

        // --- Derive this round's candidates, sequentially. ---
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C0_FFEE_CA4A_16E5,
        );
        let mut cands: Vec<Candidate> = Vec::new();
        if rounds == 0 {
            for sc in &cfg.corpus {
                cands.push(Candidate {
                    scenario: sc.clone(),
                    origin: "corpus".into(),
                });
            }
        }
        while cands.len() < cfg.batch {
            if pool.is_empty() || rng.gen_range(0..100) < cfg.fresh_pct {
                let sc = cfg.generator.scenario(cfg.seed.wrapping_add(fresh_counter));
                fresh_counter += 1;
                cands.push(Candidate {
                    scenario: sc,
                    origin: "fresh".into(),
                });
            } else {
                let base = pool.select(&mut rng).scenario.clone();
                let donor = if pool.len() > 1 && rng.gen_bool(0.5) {
                    Some(pool.select(&mut rng).scenario.clone())
                } else {
                    None
                };
                let m = mutate(&base, donor.as_ref(), &mut rng);
                cands.push(Candidate {
                    scenario: m,
                    origin: format!("mutant r{rounds}"),
                });
            }
        }
        cands.truncate(remaining);
        if cands.is_empty() {
            break;
        }

        // --- Execute the batch (the only parallel section). ---
        let results = run_batch(&cands, &cfg.fault, cfg.jobs);

        // --- Fold results, sequentially, in candidate order. ---
        for (cand, (report, features)) in cands.into_iter().zip(results) {
            execs += 1;
            coverage.merge(&features);
            match &report.violation {
                Some(v) => bugs.push(FoundBug {
                    scenario: cand.scenario,
                    violation: v.clone(),
                    execs_at: execs,
                    fingerprint: report.fingerprint,
                }),
                None => {
                    pool.offer(cand.scenario, features, report.fingerprint, &cand.origin);
                }
            }
            if cfg.stop_on_violation && !bugs.is_empty() {
                rounds += 1;
                break 'campaign;
            }
        }
        rounds += 1;
    }

    CampaignReport {
        execs,
        rounds,
        coverage,
        pool,
        bugs,
    }
}

/// Execute every candidate, returning results in candidate order.
/// Workers claim indices from a shared counter; each execution is
/// self-contained, so thread assignment cannot affect any result.
fn run_batch(cands: &[Candidate], fault: &RunConfig, jobs: usize) -> Vec<(RunReport, FeatureSet)> {
    if jobs <= 1 || cands.len() <= 1 {
        return cands
            .iter()
            .map(|c| run_with_coverage(&c.scenario, fault))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(RunReport, FeatureSet)>>> =
        cands.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(cands.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cands.len() {
                    break;
                }
                let r = run_with_coverage(&cands[i].scenario, fault);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every candidate index was claimed and filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(jobs: usize) -> CampaignReport {
        campaign(
            &CampaignConfig {
                seed: 42,
                batch: 6,
                jobs,
                max_execs: Some(18),
                ..CampaignConfig::default()
            },
            &|| true,
        )
    }

    #[test]
    fn campaign_is_jobs_invariant() {
        let solo = small(1);
        let quad = small(4);
        assert_eq!(solo.execs, 18);
        assert_eq!(solo.execs, quad.execs);
        assert_eq!(solo.coverage, quad.coverage);
        assert_eq!(solo.pool.len(), quad.pool.len());
        for (a, b) in solo.pool.entries().iter().zip(quad.pool.entries()) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.gain, b.gain);
            assert_eq!(a.origin, b.origin);
        }
        assert_eq!(solo.fingerprint(), quad.fingerprint());
    }

    #[test]
    fn pool_grows_and_coverage_accumulates() {
        let r = small(2);
        assert!(!r.pool.is_empty(), "clean runs with novelty were admitted");
        assert!(r.coverage.len() >= r.pool.coverage().len());
        assert!(r.pool.coverage().is_subset(&r.coverage));
        assert!(r.rounds >= 3, "18 execs / batch 6");
    }

    #[test]
    fn guided_campaign_finds_the_forwarding_ablation() {
        let r = campaign(
            &CampaignConfig {
                seed: 7,
                batch: 8,
                jobs: 2,
                max_execs: Some(64),
                fault: RunConfig {
                    disable_forwarding: true,
                    ..RunConfig::default()
                },
                stop_on_violation: true,
                ..CampaignConfig::default()
            },
            &|| true,
        );
        assert!(!r.bugs.is_empty(), "ablation bug found within 64 execs");
        let bug = &r.bugs[0];
        assert!(bug.execs_at <= r.execs);
        // The violating scenario replays to the same violation variant.
        let replay = crate::exec::run(
            &bug.scenario,
            &RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
        );
        assert_eq!(
            replay.violation.as_ref().map(|v| v.slug()),
            Some(bug.violation.slug())
        );
    }

    #[test]
    fn corpus_seeds_run_first_and_reach_the_pool() {
        let corpus = vec![Scenario::generate(100), Scenario::generate(101)];
        let r = campaign(
            &CampaignConfig {
                seed: 1,
                batch: 4,
                max_execs: Some(4),
                corpus,
                ..CampaignConfig::default()
            },
            &|| true,
        );
        assert!(
            r.pool.entries().iter().any(|e| e.origin == "corpus"),
            "corpus entries admitted first"
        );
    }

    #[test]
    fn keep_going_false_stops_before_any_round() {
        let r = campaign(&CampaignConfig::default(), &|| false);
        assert_eq!(r.execs, 0);
        assert_eq!(r.rounds, 0);
    }
}
