//! Scenario generation and the round-trippable text format.
//!
//! A [`Scenario`] is everything one chaos run needs: topology, workload
//! mix, and a virtual-time event schedule. [`Scenario::generate`] derives
//! all of it deterministically from a single `u64` seed, so a seed *is* a
//! scenario; [`Scenario::to_text`] / [`Scenario::parse`] give scenarios a
//! stable textual form so shrunk repros and corpus entries survive
//! generator changes (a corpus file pins the schedule itself, not the
//! generator version that once produced it).
//!
//! Every quantity is an integer (loss is parts-per-thousand, the degrade
//! factor is a percentage) so the text round-trip is exact and `Eq`
//! derives cleanly.

use demos_net::{EdgeParams, Topology};
use demos_types::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Topology family of a generated cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// Every pair directly connected.
    Mesh,
    /// A chain `0 — 1 — … — n-1`.
    Line,
    /// A cycle.
    Ring,
    /// Machine 0 is the hub; everyone else is a spoke.
    Star,
}

impl TopoKind {
    fn name(self) -> &'static str {
        match self {
            TopoKind::Mesh => "mesh",
            TopoKind::Line => "line",
            TopoKind::Ring => "ring",
            TopoKind::Star => "star",
        }
    }
}

/// Topology parameters: family plus uniform per-edge characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopoSpec {
    /// Family.
    pub kind: TopoKind,
    /// Machine count.
    pub n: u16,
    /// Per-edge latency, microseconds.
    pub latency_us: u64,
    /// Per-edge bandwidth cost, nanoseconds per byte.
    pub ns_per_byte: u64,
    /// Per-edge loss probability, parts per thousand.
    pub loss_pm: u64,
}

impl TopoSpec {
    /// Materialize the [`Topology`].
    pub fn build(&self) -> Topology {
        let params = EdgeParams {
            latency: Duration::from_micros(self.latency_us),
            ns_per_byte: self.ns_per_byte,
            loss: self.loss_pm as f64 / 1000.0,
        };
        let n = self.n as usize;
        match self.kind {
            TopoKind::Mesh => Topology::full_mesh(n, params),
            TopoKind::Line => Topology::line(n, params),
            TopoKind::Ring => Topology::ring(n, params),
            TopoKind::Star => Topology::star(n, params),
        }
    }

    /// Direct edges of this topology, as (low, high) machine pairs — the
    /// candidates a partition event can sever.
    pub fn edges(&self) -> Vec<(u16, u16)> {
        let n = self.n;
        match self.kind {
            TopoKind::Mesh => (0..n)
                .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
                .collect(),
            TopoKind::Line => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            TopoKind::Ring => (0..n)
                .map(|i| {
                    let j = (i + 1) % n;
                    (i.min(j), i.max(j))
                })
                .collect(),
            TopoKind::Star => (1..n).map(|i| (0, i)).collect(),
        }
    }
}

/// One workload of the mix. Each spawns one or two processes; processes
/// are addressed by *slot* — their index in spawn order across the whole
/// workload list — so events stay valid under textual editing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// A ping-pong pair: slot `s` on machine `a`, slot `s+1` on `b`,
    /// rallying `limit` times with `cpu_us` of CPU per ball.
    PingPong {
        /// Machine of the first peer.
        a: u16,
        /// Machine of the second peer.
        b: u16,
        /// Rallies before the pair stops.
        limit: u64,
        /// CPU burned per ball, microseconds.
        cpu_us: u32,
    },
    /// An inert cargo process (slot `s`) carrying `ballast` opaque bytes;
    /// burst events throw messages at it and it counts them.
    Cargo {
        /// Hosting machine.
        m: u16,
        /// Ballast bytes in the program state.
        ballast: u32,
    },
    /// An echo server (slot `s`) on `server` and a request generator
    /// (slot `s+1`) on `client` sending `requests` requests of `payload`
    /// bytes every `period_us`.
    ClientServer {
        /// Client machine.
        client: u16,
        /// Server machine.
        server: u16,
        /// Requests the client sends in total.
        requests: u64,
        /// Send period, microseconds.
        period_us: u32,
        /// Request payload size, bytes.
        payload: u32,
    },
}

impl Workload {
    /// Process slots this workload occupies.
    pub fn slots(&self) -> u16 {
        match self {
            Workload::PingPong { .. } | Workload::ClientServer { .. } => 2,
            Workload::Cargo { .. } => 1,
        }
    }
}

/// One scheduled fault or stimulus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Migrate the process in `slot` to machine `to`.
    Migrate {
        /// Process slot.
        slot: u16,
        /// Destination machine.
        to: u16,
    },
    /// Post `count` user messages of `payload` bytes to the process in
    /// `slot`.
    Burst {
        /// Process slot.
        slot: u16,
        /// Messages to post.
        count: u16,
        /// Payload bytes per message.
        payload: u32,
    },
    /// Sever the direct edge `a — b` (generated only on edges the
    /// topology has; always paired with a later [`EventKind::HealEdge`]).
    Partition {
        /// One endpoint.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// Restore a severed edge.
    HealEdge {
        /// One endpoint.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// Crash machine `m`. In a classic scenario the executor skips it
    /// unless the machine is empty — no processes, no forwarding
    /// addresses, no migration in flight — which keeps exactly-once
    /// delivery an unconditional invariant, and the generator always
    /// pairs it with a later [`EventKind::Revive`]. In a recovery
    /// scenario ([`Scenario::recovery`]) the crash is *permanent* and may
    /// hit a populated machine: the kernels' failure detector and the
    /// checkpoint re-homing machinery are expected to absorb it.
    Crash {
        /// Target machine.
        m: u16,
    },
    /// Revive a crashed machine.
    Revive {
        /// Target machine.
        m: u16,
    },
    /// Multiply machine `m`'s activation costs by `factor_pct`/100 (the
    /// paper's gradually-sinking processor; paired with a later
    /// [`EventKind::Restore`]).
    Degrade {
        /// Target machine.
        m: u16,
        /// Slowdown, percent (100 = nominal).
        factor_pct: u32,
    },
    /// Restore machine `m`'s CPU to nominal speed.
    Restore {
        /// Target machine.
        m: u16,
    },
}

/// One schedule entry: what happens and when (virtual time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the event, microseconds from the start.
    pub at_us: u64,
    /// What happens.
    pub kind: EventKind,
}

/// A complete chaos scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for the cluster's network randomness (loss coin flips).
    pub seed: u64,
    /// Topology.
    pub topo: TopoSpec,
    /// Invariant-check cadence, microseconds of virtual time.
    pub quantum_us: u64,
    /// Active phase length, microseconds; events all land inside it.
    pub horizon_us: u64,
    /// Drain budget after the active phase, microseconds.
    pub drain_us: u64,
    /// Workload mix.
    pub workloads: Vec<Workload>,
    /// Event schedule, sorted by time (ties keep list order).
    pub events: Vec<Event>,
    /// Recovery scenario: crashes are permanent (never revived), may hit
    /// populated machines, and the executor runs the cluster with
    /// heartbeat failure detection plus checkpoint re-homing enabled.
    /// Rendered as a `recovery 1` line only when set, so classic corpus
    /// files replay byte-identically.
    pub recovery: bool,
}

impl Scenario {
    /// Total process slots across the workload mix.
    pub fn total_slots(&self) -> u16 {
        self.workloads.iter().map(|w| w.slots()).sum()
    }

    /// Derive a full scenario from a single seed. Deterministic: the same
    /// seed always yields the same scenario, on every platform.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE_D15E_A5E5);
        let n = (2 + rng.gen_range(0..5)) as u16; // 2..=6 machines
        let kind = match rng.gen_range(0..4) {
            0 => TopoKind::Mesh,
            1 => TopoKind::Line,
            2 => TopoKind::Ring,
            _ => TopoKind::Star,
        };
        let topo = TopoSpec {
            kind,
            n,
            latency_us: 50 + rng.gen_range(0..750),
            ns_per_byte: rng.gen_range(0..300),
            loss_pm: rng.gen_range(0..80), // up to 8% loss
        };
        let horizon_us = 30_000 + rng.gen_range(0..50_000);
        let quantum_us = 2_000 + rng.gen_range(0..6_000);

        let mut workloads = vec![{
            let a = rng.gen_range(0..n as u64) as u16;
            let b = (a + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            Workload::PingPong {
                a,
                b,
                limit: 50 + rng.gen_range(0..250),
                cpu_us: rng.gen_range(0..100) as u32,
            }
        }];
        if rng.gen_bool(0.6) {
            workloads.push(Workload::Cargo {
                m: rng.gen_range(0..n as u64) as u16,
                ballast: rng.gen_range(0..16_384) as u32,
            });
        }
        if rng.gen_bool(0.5) {
            let server = rng.gen_range(0..n as u64) as u16;
            let client = (server + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            workloads.push(Workload::ClientServer {
                client,
                server,
                requests: 10 + rng.gen_range(0..50),
                period_us: 300 + rng.gen_range(0..700) as u32,
                payload: rng.gen_range(0..256) as u32,
            });
        }
        let slots: u64 = workloads.iter().map(|w| w.slots() as u64).sum();
        let edges = topo.edges();

        let mut events: Vec<Event> = Vec::new();
        let singles = 3 + rng.gen_range(0..10);
        for _ in 0..singles {
            let at_us = 1_000 + rng.gen_range(0..horizon_us - 3_000);
            let roll = rng.gen_range(0..100);
            if roll < 45 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Migrate {
                        slot: rng.gen_range(0..slots) as u16,
                        to: rng.gen_range(0..n as u64) as u16,
                    },
                });
            } else if roll < 65 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Burst {
                        slot: rng.gen_range(0..slots) as u16,
                        count: 1 + rng.gen_range(0..8) as u16,
                        payload: rng.gen_range(0..256) as u32,
                    },
                });
            } else if roll < 800 {
                let (a, b) = edges[rng.gen_range(0..edges.len() as u64) as usize];
                let heal_at = (at_us + 2_000 + rng.gen_range(0..12_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(heal_at.saturating_sub(1)),
                    kind: EventKind::Partition { a, b },
                });
                events.push(Event {
                    at_us: heal_at,
                    kind: EventKind::HealEdge { a, b },
                });
            } else if roll < 92 {
                let m = rng.gen_range(0..n as u64) as u16;
                let restore_at = (at_us + 2_000 + rng.gen_range(0..12_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(restore_at.saturating_sub(1)),
                    kind: EventKind::Degrade {
                        m,
                        factor_pct: 150 + rng.gen_range(0..1_850) as u32,
                    },
                });
                events.push(Event {
                    at_us: restore_at,
                    kind: EventKind::Restore { m },
                });
            } else {
                let m = rng.gen_range(0..n as u64) as u16;
                let revive_at = (at_us + 2_000 + rng.gen_range(0..12_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(revive_at.saturating_sub(1)),
                    kind: EventKind::Crash { m },
                });
                events.push(Event {
                    at_us: revive_at,
                    kind: EventKind::Revive { m },
                });
            }
        }
        events.sort_by_key(|e| e.at_us);

        Scenario {
            seed,
            topo,
            quantum_us,
            horizon_us,
            drain_us: 30_000_000,
            workloads,
            events,
            recovery: false,
        }
    }

    /// Derive a *recovery* scenario from a seed: a mesh cluster (so a
    /// dead machine never disconnects the survivors), longer-lived
    /// workloads, and one or more **permanent** crashes — machines that
    /// die mid-run, possibly while hosting processes, and are never
    /// revived. The executor pairs these scenarios with heartbeat
    /// detection and checkpoint re-homing; the crash events land late
    /// enough that the periodic checkpointer has covered every process.
    pub fn generate_recovery(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00FA_11ED_CAFE_D00D);
        let n = (3 + rng.gen_range(0..4)) as u16; // 3..=6 machines
        let topo = TopoSpec {
            kind: TopoKind::Mesh,
            n,
            latency_us: 50 + rng.gen_range(0..450),
            ns_per_byte: rng.gen_range(0..200),
            loss_pm: rng.gen_range(0..50), // up to 5% loss
        };
        let horizon_us = 40_000 + rng.gen_range(0..40_000);
        let quantum_us = 2_000 + rng.gen_range(0..6_000);

        let mut workloads = vec![{
            let a = rng.gen_range(0..n as u64) as u16;
            let b = (a + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            Workload::PingPong {
                a,
                b,
                limit: 50 + rng.gen_range(0..250),
                cpu_us: rng.gen_range(0..100) as u32,
            }
        }];
        if rng.gen_bool(0.6) {
            workloads.push(Workload::Cargo {
                m: rng.gen_range(0..n as u64) as u16,
                ballast: rng.gen_range(0..8_192) as u32,
            });
        }
        if rng.gen_bool(0.7) {
            let server = rng.gen_range(0..n as u64) as u16;
            let client = (server + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            workloads.push(Workload::ClientServer {
                client,
                server,
                requests: 50 + rng.gen_range(0..150),
                period_us: 400 + rng.gen_range(0..800) as u32,
                payload: rng.gen_range(0..256) as u32,
            });
        }
        let slots: u64 = workloads.iter().map(|w| w.slots() as u64).sum();
        let edges = topo.edges();

        let mut events: Vec<Event> = Vec::new();
        let singles = 2 + rng.gen_range(0..6);
        for _ in 0..singles {
            let at_us = 1_000 + rng.gen_range(0..horizon_us - 3_000);
            let roll = rng.gen_range(0..100);
            if roll < 50 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Migrate {
                        slot: rng.gen_range(0..slots) as u16,
                        to: rng.gen_range(0..n as u64) as u16,
                    },
                });
            } else if roll < 80 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Burst {
                        slot: rng.gen_range(0..slots) as u16,
                        count: 1 + rng.gen_range(0..8) as u16,
                        payload: rng.gen_range(0..256) as u32,
                    },
                });
            } else {
                // Keep partitions short of the detector's suspicion
                // window so a partitioned peer is not declared dead.
                let (a, b) = edges[rng.gen_range(0..edges.len() as u64) as usize];
                let heal_at = (at_us + 1_000 + rng.gen_range(0..8_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(heal_at.saturating_sub(1)),
                    kind: EventKind::Partition { a, b },
                });
                events.push(Event {
                    at_us: heal_at,
                    kind: EventKind::HealEdge { a, b },
                });
            }
        }
        // Permanent crashes on distinct machines, at least two survivors.
        let ncrash = 1 + rng.gen_range(0..(n as u64 - 2).max(1));
        let mut victims: Vec<u16> = (0..n).collect();
        for _ in 0..ncrash {
            let i = rng.gen_range(0..victims.len() as u64) as usize;
            let m = victims.swap_remove(i);
            // Late enough that the checkpoint cadence (5 ms in the
            // executor) has covered the machine's processes.
            let at_us = 15_000 + rng.gen_range(0..horizon_us - 20_000);
            events.push(Event {
                at_us,
                kind: EventKind::Crash { m },
            });
        }
        events.sort_by_key(|e| e.at_us);

        Scenario {
            seed,
            topo,
            quantum_us,
            horizon_us,
            drain_us: 30_000_000,
            workloads,
            events,
            recovery: true,
        }
    }

    /// Derive a classic scenario in the **rare-interleaving regime**:
    /// identical shape to [`Scenario::generate`], but migrations occupy
    /// only ~2% of the event-roll space instead of 45%. Under the
    /// `no-forwarding` ablation the bug needs a migration with traffic
    /// behind it, so blind sampling over this generator has to wait for
    /// the rare roll — the regime experiment E17 uses to measure how
    /// much faster coverage-guided search reaches the same bug.
    pub fn generate_rare(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00AB_5EED_0DD5_0101);
        let n = (2 + rng.gen_range(0..5)) as u16; // 2..=6 machines
        let kind = match rng.gen_range(0..4) {
            0 => TopoKind::Mesh,
            1 => TopoKind::Line,
            2 => TopoKind::Ring,
            _ => TopoKind::Star,
        };
        let topo = TopoSpec {
            kind,
            n,
            latency_us: 50 + rng.gen_range(0..750),
            ns_per_byte: rng.gen_range(0..300),
            loss_pm: rng.gen_range(0..80),
        };
        let horizon_us = 30_000 + rng.gen_range(0..50_000);
        let quantum_us = 2_000 + rng.gen_range(0..6_000);

        let mut workloads = vec![{
            let a = rng.gen_range(0..n as u64) as u16;
            let b = (a + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            Workload::PingPong {
                a,
                b,
                limit: 50 + rng.gen_range(0..250),
                cpu_us: rng.gen_range(0..100) as u32,
            }
        }];
        if rng.gen_bool(0.6) {
            workloads.push(Workload::Cargo {
                m: rng.gen_range(0..n as u64) as u16,
                ballast: rng.gen_range(0..16_384) as u32,
            });
        }
        let slots: u64 = workloads.iter().map(|w| w.slots() as u64).sum();
        let edges = topo.edges();

        let mut events: Vec<Event> = Vec::new();
        let singles = 3 + rng.gen_range(0..10);
        for _ in 0..singles {
            let at_us = 1_000 + rng.gen_range(0..horizon_us - 3_000);
            let roll = rng.gen_range(0..1000);
            if roll < 3 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Migrate {
                        slot: rng.gen_range(0..slots) as u16,
                        to: rng.gen_range(0..n as u64) as u16,
                    },
                });
            } else if roll < 550 {
                events.push(Event {
                    at_us,
                    kind: EventKind::Burst {
                        slot: rng.gen_range(0..slots) as u16,
                        count: 1 + rng.gen_range(0..8) as u16,
                        payload: rng.gen_range(0..256) as u32,
                    },
                });
            } else if roll < 80 {
                let (a, b) = edges[rng.gen_range(0..edges.len() as u64) as usize];
                let heal_at = (at_us + 2_000 + rng.gen_range(0..12_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(heal_at.saturating_sub(1)),
                    kind: EventKind::Partition { a, b },
                });
                events.push(Event {
                    at_us: heal_at,
                    kind: EventKind::HealEdge { a, b },
                });
            } else {
                let m = rng.gen_range(0..n as u64) as u16;
                let restore_at = (at_us + 2_000 + rng.gen_range(0..12_000)).min(horizon_us - 1);
                events.push(Event {
                    at_us: at_us.min(restore_at.saturating_sub(1)),
                    kind: EventKind::Degrade {
                        m,
                        factor_pct: 150 + rng.gen_range(0..1_850) as u32,
                    },
                });
                events.push(Event {
                    at_us: restore_at,
                    kind: EventKind::Restore { m },
                });
            }
        }
        events.sort_by_key(|e| e.at_us);

        Scenario {
            seed,
            topo,
            quantum_us,
            horizon_us,
            drain_us: 30_000_000,
            workloads,
            events,
            recovery: false,
        }
    }

    /// Derive a recovery scenario in the **rare-interleaving regime**:
    /// identical shape to [`Scenario::generate_recovery`], but the
    /// permanent crash is no longer guaranteed — each candidate victim
    /// dies with only ~3% probability. Under the `no-recovery` ablation
    /// the bug needs a permanent crash on a populated machine, so blind
    /// sampling has to wait for the rare draw.
    pub fn generate_rare_recovery(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00AB_5EED_0DD5_0202);
        let n = (3 + rng.gen_range(0..4)) as u16; // 3..=6 machines
        let topo = TopoSpec {
            kind: TopoKind::Mesh,
            n,
            latency_us: 50 + rng.gen_range(0..450),
            ns_per_byte: rng.gen_range(0..200),
            loss_pm: rng.gen_range(0..50),
        };
        let horizon_us = 40_000 + rng.gen_range(0..40_000);
        let quantum_us = 2_000 + rng.gen_range(0..6_000);

        let mut workloads = vec![{
            let a = rng.gen_range(0..n as u64) as u16;
            let b = (a + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            Workload::PingPong {
                a,
                b,
                limit: 50 + rng.gen_range(0..250),
                cpu_us: rng.gen_range(0..100) as u32,
            }
        }];
        if rng.gen_bool(0.7) {
            let server = rng.gen_range(0..n as u64) as u16;
            let client = (server + 1 + rng.gen_range(0..(n as u64 - 1)) as u16) % n;
            workloads.push(Workload::ClientServer {
                client,
                server,
                requests: 50 + rng.gen_range(0..150),
                period_us: 400 + rng.gen_range(0..800) as u32,
                payload: rng.gen_range(0..256) as u32,
            });
        }
        let slots: u64 = workloads.iter().map(|w| w.slots() as u64).sum();

        let mut events: Vec<Event> = Vec::new();
        let singles = 2 + rng.gen_range(0..6);
        for _ in 0..singles {
            let at_us = 1_000 + rng.gen_range(0..horizon_us - 3_000);
            if rng.gen_bool(0.5) {
                events.push(Event {
                    at_us,
                    kind: EventKind::Migrate {
                        slot: rng.gen_range(0..slots) as u16,
                        to: rng.gen_range(0..n as u64) as u16,
                    },
                });
            } else {
                events.push(Event {
                    at_us,
                    kind: EventKind::Burst {
                        slot: rng.gen_range(0..slots) as u16,
                        count: 1 + rng.gen_range(0..8) as u16,
                        payload: rng.gen_range(0..256) as u32,
                    },
                });
            }
        }
        // Rare permanent crashes: each machine except two guaranteed
        // survivors rolls a 1% death. Almost every seed schedules none.
        for m in 0..n.saturating_sub(2) {
            if rng.gen_bool(0.01) {
                let at_us = 15_000 + rng.gen_range(0..horizon_us - 20_000);
                events.push(Event {
                    at_us,
                    kind: EventKind::Crash { m },
                });
            }
        }
        events.sort_by_key(|e| e.at_us);

        Scenario {
            seed,
            topo,
            quantum_us,
            horizon_us,
            drain_us: 30_000_000,
            workloads,
            events,
            recovery: true,
        }
    }

    /// Render the scenario in its stable text form (see [`Scenario::parse`]).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("demos-chaos v1\n");
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!(
            "topo {} {} {} {} {}\n",
            self.topo.kind.name(),
            self.topo.n,
            self.topo.latency_us,
            self.topo.ns_per_byte,
            self.topo.loss_pm
        ));
        s.push_str(&format!("quantum {}\n", self.quantum_us));
        s.push_str(&format!("horizon {}\n", self.horizon_us));
        s.push_str(&format!("drain {}\n", self.drain_us));
        if self.recovery {
            // Only emitted when set: classic corpus files stay
            // byte-identical under round-trip.
            s.push_str("recovery 1\n");
        }
        for w in &self.workloads {
            match *w {
                Workload::PingPong {
                    a,
                    b,
                    limit,
                    cpu_us,
                } => {
                    s.push_str(&format!("wl pingpong {a} {b} {limit} {cpu_us}\n"));
                }
                Workload::Cargo { m, ballast } => {
                    s.push_str(&format!("wl cargo {m} {ballast}\n"));
                }
                Workload::ClientServer {
                    client,
                    server,
                    requests,
                    period_us,
                    payload,
                } => {
                    s.push_str(&format!(
                        "wl clientserver {client} {server} {requests} {period_us} {payload}\n"
                    ));
                }
            }
        }
        for e in &self.events {
            let at = e.at_us;
            match e.kind {
                EventKind::Migrate { slot, to } => {
                    s.push_str(&format!("ev {at} migrate {slot} {to}\n"));
                }
                EventKind::Burst {
                    slot,
                    count,
                    payload,
                } => s.push_str(&format!("ev {at} burst {slot} {count} {payload}\n")),
                EventKind::Partition { a, b } => {
                    s.push_str(&format!("ev {at} partition {a} {b}\n"));
                }
                EventKind::HealEdge { a, b } => s.push_str(&format!("ev {at} heal {a} {b}\n")),
                EventKind::Crash { m } => s.push_str(&format!("ev {at} crash {m}\n")),
                EventKind::Revive { m } => s.push_str(&format!("ev {at} revive {m}\n")),
                EventKind::Degrade { m, factor_pct } => {
                    s.push_str(&format!("ev {at} degrade {m} {factor_pct}\n"));
                }
                EventKind::Restore { m } => s.push_str(&format!("ev {at} restore {m}\n")),
            }
        }
        s
    }

    /// Parse the text form produced by [`Scenario::to_text`]. Lines
    /// starting with `#` and blank lines are ignored.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
            tok.ok_or_else(|| format!("missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("bad {what}"))
        }
        let mut seed = None;
        let mut topo = None;
        let mut quantum_us = None;
        let mut horizon_us = None;
        let mut drain_us = None;
        let mut recovery = false;
        let mut workloads = Vec::new();
        let mut events = Vec::new();
        let mut saw_header = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if !saw_header {
                if line != "demos-chaos v1" {
                    return Err(format!("line {}: expected 'demos-chaos v1' header", ln + 1));
                }
                saw_header = true;
                continue;
            }
            let mut t = line.split_whitespace();
            let key = t.next().unwrap_or("");
            match key {
                "seed" => seed = Some(num::<u64>(t.next(), "seed")?),
                "topo" => {
                    let kind = match t.next() {
                        Some("mesh") => TopoKind::Mesh,
                        Some("line") => TopoKind::Line,
                        Some("ring") => TopoKind::Ring,
                        Some("star") => TopoKind::Star,
                        other => return Err(format!("line {}: bad topo kind {other:?}", ln + 1)),
                    };
                    topo = Some(TopoSpec {
                        kind,
                        n: num(t.next(), "machine count")?,
                        latency_us: num(t.next(), "latency")?,
                        ns_per_byte: num(t.next(), "ns_per_byte")?,
                        loss_pm: num(t.next(), "loss_pm")?,
                    });
                }
                "quantum" => quantum_us = Some(num::<u64>(t.next(), "quantum")?),
                "horizon" => horizon_us = Some(num::<u64>(t.next(), "horizon")?),
                "drain" => drain_us = Some(num::<u64>(t.next(), "drain")?),
                "recovery" => recovery = num::<u64>(t.next(), "recovery")? != 0,
                "wl" => {
                    let w = match t.next() {
                        Some("pingpong") => Workload::PingPong {
                            a: num(t.next(), "a")?,
                            b: num(t.next(), "b")?,
                            limit: num(t.next(), "limit")?,
                            cpu_us: num(t.next(), "cpu_us")?,
                        },
                        Some("cargo") => Workload::Cargo {
                            m: num(t.next(), "m")?,
                            ballast: num(t.next(), "ballast")?,
                        },
                        Some("clientserver") => Workload::ClientServer {
                            client: num(t.next(), "client")?,
                            server: num(t.next(), "server")?,
                            requests: num(t.next(), "requests")?,
                            period_us: num(t.next(), "period_us")?,
                            payload: num(t.next(), "payload")?,
                        },
                        other => return Err(format!("line {}: bad workload {other:?}", ln + 1)),
                    };
                    workloads.push(w);
                }
                "ev" => {
                    let at_us = num::<u64>(t.next(), "event time")?;
                    let kind = match t.next() {
                        Some("migrate") => EventKind::Migrate {
                            slot: num(t.next(), "slot")?,
                            to: num(t.next(), "to")?,
                        },
                        Some("burst") => EventKind::Burst {
                            slot: num(t.next(), "slot")?,
                            count: num(t.next(), "count")?,
                            payload: num(t.next(), "payload")?,
                        },
                        Some("partition") => EventKind::Partition {
                            a: num(t.next(), "a")?,
                            b: num(t.next(), "b")?,
                        },
                        Some("heal") => EventKind::HealEdge {
                            a: num(t.next(), "a")?,
                            b: num(t.next(), "b")?,
                        },
                        Some("crash") => EventKind::Crash {
                            m: num(t.next(), "m")?,
                        },
                        Some("revive") => EventKind::Revive {
                            m: num(t.next(), "m")?,
                        },
                        Some("degrade") => EventKind::Degrade {
                            m: num(t.next(), "m")?,
                            factor_pct: num(t.next(), "factor_pct")?,
                        },
                        Some("restore") => EventKind::Restore {
                            m: num(t.next(), "m")?,
                        },
                        other => return Err(format!("line {}: bad event {other:?}", ln + 1)),
                    };
                    events.push(Event { at_us, kind });
                }
                other => return Err(format!("line {}: unknown key {other:?}", ln + 1)),
            }
        }
        let sc = Scenario {
            seed: seed.ok_or("missing seed")?,
            topo: topo.ok_or("missing topo")?,
            quantum_us: quantum_us.ok_or("missing quantum")?,
            horizon_us: horizon_us.ok_or("missing horizon")?,
            drain_us: drain_us.ok_or("missing drain")?,
            workloads,
            events,
            recovery,
        };
        if sc.workloads.is_empty() {
            return Err("scenario has no workloads".into());
        }
        sc.validate()?;
        Ok(sc)
    }

    /// A corpus entry: either a bare seed number (generate the scenario)
    /// or full scenario text.
    pub fn from_corpus(text: &str) -> Result<Scenario, String> {
        let trimmed = text.trim();
        if let Ok(seed) = trimmed.parse::<u64>() {
            return Ok(Scenario::generate(seed));
        }
        Scenario::parse(text)
    }

    /// Structural sanity: machine and slot references in range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topo.n;
        if n < 2 {
            return Err("need at least 2 machines".into());
        }
        if self.recovery && n < 3 {
            return Err("recovery scenarios need at least 3 machines".into());
        }
        let slots = self.total_slots();
        let chk_m = |m: u16, what: &str| {
            if m >= n {
                Err(format!("{what} machine {m} out of range (n={n})"))
            } else {
                Ok(())
            }
        };
        for w in &self.workloads {
            match *w {
                Workload::PingPong { a, b, .. } => {
                    chk_m(a, "pingpong")?;
                    chk_m(b, "pingpong")?;
                }
                Workload::Cargo { m, .. } => chk_m(m, "cargo")?,
                Workload::ClientServer { client, server, .. } => {
                    chk_m(client, "client")?;
                    chk_m(server, "server")?;
                }
            }
        }
        for e in &self.events {
            match e.kind {
                EventKind::Migrate { slot, to } => {
                    chk_m(to, "migrate")?;
                    if slot >= slots {
                        return Err(format!("migrate slot {slot} out of range ({slots})"));
                    }
                }
                EventKind::Burst { slot, .. } => {
                    if slot >= slots {
                        return Err(format!("burst slot {slot} out of range ({slots})"));
                    }
                }
                EventKind::Partition { a, b } | EventKind::HealEdge { a, b } => {
                    chk_m(a, "partition")?;
                    chk_m(b, "partition")?;
                }
                EventKind::Crash { m }
                | EventKind::Revive { m }
                | EventKind::Degrade { m, .. }
                | EventKind::Restore { m } => chk_m(m, "fault")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..50 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed}");
            a.validate().expect("generated scenario valid");
            assert!(!a.workloads.is_empty());
            assert!(!a.events.is_empty());
        }
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn text_round_trips() {
        for seed in 0..50 {
            let sc = Scenario::generate(seed);
            let text = sc.to_text();
            let back = Scenario::parse(&text).expect("parses");
            assert_eq!(sc, back, "seed {seed}:\n{text}");
        }
    }

    #[test]
    fn recovery_generation_is_deterministic_with_permanent_crashes() {
        for seed in 0..50 {
            let a = Scenario::generate_recovery(seed);
            let b = Scenario::generate_recovery(seed);
            assert_eq!(a, b, "seed {seed}");
            a.validate().expect("generated recovery scenario valid");
            assert!(a.recovery);
            assert!(a.topo.n >= 3);
            let crashes: Vec<u16> = a
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Crash { m } => Some(m),
                    _ => None,
                })
                .collect();
            assert!(!crashes.is_empty(), "seed {seed} schedules a crash");
            assert!(
                crashes.len() <= a.topo.n as usize - 2,
                "at least two survivors"
            );
            let mut uniq = crashes.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), crashes.len(), "crash targets distinct");
            assert!(
                !a.events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Revive { .. })),
                "permanent crashes are never revived"
            );
            assert!(
                a.events.iter().all(|e| match e.kind {
                    EventKind::Crash { .. } => e.at_us >= 15_000,
                    _ => true,
                }),
                "crashes land after the first checkpoint passes"
            );
        }
    }

    #[test]
    fn rare_regime_generators_are_deterministic_and_sparse() {
        let mut with_migration = 0usize;
        let mut with_crash = 0usize;
        for seed in 0..500u64 {
            let a = Scenario::generate_rare(seed);
            assert_eq!(a, Scenario::generate_rare(seed), "seed {seed}");
            a.validate().expect("rare scenario valid");
            assert!(!a.recovery);
            if a.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Migrate { .. }))
            {
                with_migration += 1;
            }
            let r = Scenario::generate_rare_recovery(seed);
            assert_eq!(r, Scenario::generate_rare_recovery(seed), "seed {seed}");
            r.validate().expect("rare recovery scenario valid");
            assert!(r.recovery);
            if r.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Crash { .. }))
            {
                with_crash += 1;
            }
        }
        // The point of the regime: the triggering fault is rare under
        // blind sampling. Loose bounds so distribution tweaks don't
        // flake, but both must stay genuinely sparse.
        assert!(
            (1..50).contains(&with_migration),
            "rare migrations: {with_migration}/500"
        );
        assert!(
            (1..50).contains(&with_crash),
            "rare crashes: {with_crash}/500"
        );
    }

    #[test]
    fn recovery_flag_round_trips_and_classic_text_is_unchanged() {
        let sc = Scenario::generate_recovery(9);
        let text = sc.to_text();
        assert!(text.contains("recovery 1\n"));
        assert_eq!(Scenario::parse(&text).unwrap(), sc);
        // A classic scenario never mentions recovery, and text without
        // the line parses with the flag off — old corpus files replay
        // byte-identically.
        let classic = Scenario::generate(9);
        let ctext = classic.to_text();
        assert!(!ctext.contains("recovery"));
        let back = Scenario::parse(&ctext).unwrap();
        assert!(!back.recovery);
        assert_eq!(back.to_text(), ctext);
    }

    #[test]
    fn corpus_accepts_bare_seed_or_text() {
        let by_seed = Scenario::from_corpus(" 42 \n").unwrap();
        assert_eq!(by_seed, Scenario::generate(42));
        let by_text = Scenario::from_corpus(&Scenario::generate(42).to_text()).unwrap();
        assert_eq!(by_text, by_seed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Scenario::parse("nonsense").is_err());
        assert!(Scenario::parse("demos-chaos v1\nseed 1\n").is_err());
        let mut sc = Scenario::generate(3);
        sc.events.push(Event {
            at_us: 1,
            kind: EventKind::Migrate { slot: 99, to: 0 },
        });
        assert!(Scenario::parse(&sc.to_text()).is_err(), "slot out of range");
    }

    #[test]
    fn edges_match_topology_family() {
        let mesh = TopoSpec {
            kind: TopoKind::Mesh,
            n: 4,
            latency_us: 100,
            ns_per_byte: 0,
            loss_pm: 0,
        };
        assert_eq!(mesh.edges().len(), 6);
        let line = TopoSpec {
            kind: TopoKind::Line,
            ..mesh
        };
        assert_eq!(line.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        let star = TopoSpec {
            kind: TopoKind::Star,
            ..mesh
        };
        assert_eq!(star.edges(), vec![(0, 1), (0, 2), (0, 3)]);
        let ring = TopoSpec {
            kind: TopoKind::Ring,
            ..mesh
        };
        assert_eq!(ring.edges().len(), 4);
        for (a, b) in ring.edges() {
            assert!(a < b);
            assert!(mesh
                .build()
                .edge(demos_types::MachineId(a), demos_types::MachineId(b))
                .is_some());
        }
    }
}
