//! Deterministic chaos harness for the DEMOS/MP reproduction.
//!
//! The paper's central claim is that migration is *transparent*: messages
//! are delivered exactly once and links converge to the process's true
//! location no matter when a move happens (§3–§4). This crate checks that
//! claim adversarially instead of anecdotally:
//!
//! * [`scenario`] — a single `u64` seed derives a whole scenario: random
//!   topology (mesh/line/ring/star with per-edge latency, bandwidth and
//!   loss), a random workload mix, and a random schedule interleaving
//!   migrations, partitions, crashes, CPU degradations and message
//!   bursts — plus a stable text form for corpus files and repros;
//! * [`invariants`] — continuous checkers run between every virtual-time
//!   quantum: exactly-once delivery, forwarding-chain acyclicity,
//!   process-state conservation, transport-counter sanity, and (at
//!   quiescence) link convergence and workload counter reconciliation;
//! * [`exec`] — the schedule executor tying the two together;
//! * [`coverage`] — schedule-coverage features of one run (protocol
//!   edges, fault×phase pairs, forwarding depth, recovery overlap,
//!   violation variants): the fuzzer's feedback signal;
//! * [`mutate`] — operators that edit a scenario's stable form (retime,
//!   reorder, splice, insert from the fault alphabet, …);
//! * [`pool`] — the corpus pool of clean feature-novel scenarios, its
//!   gain-weighted selector and its greedy set-cover distiller;
//! * [`campaign`] — the coverage-guided parallel driver: rounds of
//!   deterministically derived candidate batches, executed across
//!   threads, folded in order — byte-identical for any `--jobs`;
//! * [`shrink`] — a greedy ddmin-style reducer that minimizes a violating
//!   schedule while the violation still reproduces;
//! * [`repro`] — emits the minimized scenario as corpus text, a
//!   self-contained Rust test, and the JSON-lines trace.
//!
//! The `chaos` binary (`cargo run --release -p demos-chaos`) drives both
//! blind seed sweeps and guided campaigns; see `--help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod coverage;
pub mod exec;
pub mod invariants;
pub mod mutate;
pub mod pool;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub use campaign::{campaign, CampaignConfig, CampaignReport, FoundBug, Generator};
pub use exec::{
    run, run_capture, run_full, run_with_coverage, trace_json_lines, RunConfig, RunReport,
    BURST_TAG,
};
pub use invariants::{Checker, Violation};
pub use mutate::mutate;
pub use pool::{Pool, PoolEntry};
pub use repro::{rust_snippet, write_artifacts, Artifacts};
pub use scenario::{Event, EventKind, Scenario, TopoKind, TopoSpec, Workload};
pub use shrink::{shrink, ShrinkResult};
