//! Deterministic chaos harness for the DEMOS/MP reproduction.
//!
//! The paper's central claim is that migration is *transparent*: messages
//! are delivered exactly once and links converge to the process's true
//! location no matter when a move happens (§3–§4). This crate checks that
//! claim adversarially instead of anecdotally:
//!
//! * [`scenario`] — a single `u64` seed derives a whole scenario: random
//!   topology (mesh/line/ring/star with per-edge latency, bandwidth and
//!   loss), a random workload mix, and a random schedule interleaving
//!   migrations, partitions, crashes, CPU degradations and message
//!   bursts — plus a stable text form for corpus files and repros;
//! * [`invariants`] — continuous checkers run between every virtual-time
//!   quantum: exactly-once delivery, forwarding-chain acyclicity,
//!   process-state conservation, transport-counter sanity, and (at
//!   quiescence) link convergence and workload counter reconciliation;
//! * [`exec`] — the schedule executor tying the two together;
//! * [`shrink`] — a greedy ddmin-style reducer that minimizes a violating
//!   schedule while the violation still reproduces;
//! * [`repro`] — emits the minimized scenario as corpus text, a
//!   self-contained Rust test, and the JSON-lines trace.
//!
//! The `chaos` binary (`cargo run --release -p demos-chaos`) drives seed
//! sweeps; see `--help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod invariants;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub use exec::{run, run_capture, run_full, trace_json_lines, RunConfig, RunReport, BURST_TAG};
pub use invariants::{Checker, Violation};
pub use repro::{rust_snippet, write_artifacts, Artifacts};
pub use scenario::{Event, EventKind, Scenario, TopoKind, TopoSpec, Workload};
pub use shrink::{shrink, ShrinkResult};
