//! Greedy schedule shrinking.
//!
//! Once a scenario trips an invariant, the schedule that produced it is
//! usually mostly noise. The shrinker re-executes candidate reductions
//! and keeps any that still reproduce the *same kind* of violation
//! (matching on the enum variant, so the shrink can't drift from a lost
//! message to an unrelated counter mismatch):
//!
//! 1. **ddmin over events** — try deleting chunks of the schedule,
//!    halving the chunk size down to single events;
//! 2. **workload pruning** — drop whole workloads (remapping event slot
//!    references, deleting events that referenced the dropped slots);
//! 3. repeat until a fixed point or the run budget is exhausted.
//!
//! Everything is deterministic, so "still reproduces" is a plain re-run.

use crate::exec::{run, RunConfig};
use crate::invariants::Violation;
use crate::scenario::{EventKind, Scenario};

/// Result of a shrink campaign.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest scenario found that still violates.
    pub scenario: Scenario,
    /// The violation the shrunk scenario produces.
    pub violation: Violation,
    /// Scenario executions spent.
    pub runs: usize,
    /// Accepted reductions, in order — the shrink's audit trail
    /// (`events 5 -> 3`, `workload 1 dropped`). Deterministic for a
    /// given input, so tests can pin it as a golden trace.
    pub steps: Vec<String>,
}

fn same_kind(a: &Violation, b: &Violation) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

/// Drop workload `wi`, removing events that reference its slots and
/// shifting higher slot references down. Returns `None` if it was the
/// only workload.
fn drop_workload(sc: &Scenario, wi: usize) -> Option<Scenario> {
    if sc.workloads.len() <= 1 {
        return None;
    }
    let first: u16 = sc.workloads[..wi].iter().map(|w| w.slots()).sum();
    let width = sc.workloads[wi].slots();
    let mut out = sc.clone();
    out.workloads.remove(wi);
    out.events.retain_mut(|e| match &mut e.kind {
        EventKind::Migrate { slot, .. } | EventKind::Burst { slot, .. } => {
            if (first..first + width).contains(slot) {
                false
            } else {
                if *slot >= first + width {
                    *slot -= width;
                }
                true
            }
        }
        _ => true,
    });
    Some(out)
}

/// Shrink `sc` (which must produce `original` under `cfg`) within a
/// budget of `max_runs` re-executions.
pub fn shrink(
    sc: &Scenario,
    cfg: &RunConfig,
    original: &Violation,
    max_runs: usize,
) -> ShrinkResult {
    let mut cur = sc.clone();
    let mut cur_violation = original.clone();
    let mut runs = 0usize;
    let mut steps: Vec<String> = Vec::new();

    let reproduces = |cand: &Scenario, runs: &mut usize| -> Option<Violation> {
        *runs += 1;
        run(cand, cfg).violation.filter(|v| same_kind(v, original))
    };

    loop {
        let mut progressed = false;

        // Pass 1: ddmin over the event schedule.
        let mut chunk = (cur.events.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.events.len() && runs < max_runs {
                let mut cand = cur.clone();
                let end = (i + chunk).min(cand.events.len());
                cand.events.drain(i..end);
                if let Some(v) = reproduces(&cand, &mut runs) {
                    steps.push(format!(
                        "events {} -> {}",
                        cur.events.len(),
                        cand.events.len()
                    ));
                    cur = cand;
                    cur_violation = v;
                    progressed = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 || runs >= max_runs {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Pass 2: drop whole workloads.
        let mut wi = 0;
        while wi < cur.workloads.len() && runs < max_runs {
            if let Some(cand) = drop_workload(&cur, wi) {
                if let Some(v) = reproduces(&cand, &mut runs) {
                    steps.push(format!("workload {wi} dropped"));
                    cur = cand;
                    cur_violation = v;
                    progressed = true;
                    continue; // same index now names the next workload
                }
            }
            wi += 1;
        }

        if !progressed || runs >= max_runs {
            break;
        }
    }

    ShrinkResult {
        scenario: cur,
        violation: cur_violation,
        runs,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Event, TopoKind, TopoSpec, Workload};

    fn broken_scenario() -> Scenario {
        // A busy schedule where only the migration matters once
        // forwarding is disabled.
        let sc = Scenario {
            seed: 9,
            topo: TopoSpec {
                kind: TopoKind::Mesh,
                n: 3,
                latency_us: 200,
                ns_per_byte: 100,
                loss_pm: 10,
            },
            quantum_us: 3_000,
            horizon_us: 40_000,
            drain_us: 10_000_000,
            workloads: vec![
                Workload::PingPong {
                    a: 0,
                    b: 1,
                    limit: 150,
                    cpu_us: 30,
                },
                Workload::Cargo { m: 2, ballast: 512 },
            ],
            events: vec![
                Event {
                    at_us: 2_000,
                    kind: EventKind::Burst {
                        slot: 2,
                        count: 3,
                        payload: 16,
                    },
                },
                Event {
                    at_us: 4_000,
                    kind: EventKind::Degrade {
                        m: 2,
                        factor_pct: 300,
                    },
                },
                Event {
                    at_us: 6_000,
                    kind: EventKind::Migrate { slot: 1, to: 2 },
                },
                Event {
                    at_us: 9_000,
                    kind: EventKind::Restore { m: 2 },
                },
                Event {
                    at_us: 12_000,
                    kind: EventKind::Burst {
                        slot: 2,
                        count: 2,
                        payload: 8,
                    },
                },
            ],
            recovery: false,
        };
        sc.validate().unwrap();
        sc
    }

    #[test]
    fn shrinks_broken_kernel_to_the_migration() {
        let cfg = RunConfig {
            disable_forwarding: true,
            ..RunConfig::default()
        };
        let sc = broken_scenario();
        let v = run(&sc, &cfg).violation.expect("must violate");
        let res = shrink(&sc, &cfg, &v, 100);
        assert!(
            res.scenario.events.len() <= 2,
            "shrunk to {} events: {:?}",
            res.scenario.events.len(),
            res.scenario.events
        );
        assert!(res
            .scenario
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Migrate { .. })));
        // The shrunk scenario still reproduces.
        let again = run(&res.scenario, &cfg).violation.expect("reproduces");
        assert_eq!(
            std::mem::discriminant(&again),
            std::mem::discriminant(&res.violation)
        );
    }

    /// A scenario with *two* real faults (a migration and a permanent-ish
    /// partition window) buried in noise, used by the multi-fault golden
    /// tests: under `disable_forwarding` only the migration matters, so
    /// the shrinker must peel away the partition too.
    fn multi_fault_scenario() -> Scenario {
        let sc = Scenario {
            seed: 17,
            topo: TopoSpec {
                kind: TopoKind::Mesh,
                n: 4,
                latency_us: 150,
                ns_per_byte: 50,
                loss_pm: 0,
            },
            quantum_us: 2_500,
            horizon_us: 50_000,
            drain_us: 10_000_000,
            workloads: vec![
                Workload::PingPong {
                    a: 0,
                    b: 1,
                    limit: 200,
                    cpu_us: 40,
                },
                Workload::Cargo { m: 3, ballast: 256 },
                Workload::ClientServer {
                    client: 2,
                    server: 3,
                    requests: 30,
                    period_us: 500,
                    payload: 64,
                },
            ],
            events: vec![
                Event {
                    at_us: 2_000,
                    kind: EventKind::Burst {
                        slot: 2,
                        count: 4,
                        payload: 32,
                    },
                },
                Event {
                    at_us: 5_000,
                    kind: EventKind::Partition { a: 2, b: 3 },
                },
                Event {
                    at_us: 8_000,
                    kind: EventKind::Migrate { slot: 1, to: 2 },
                },
                Event {
                    at_us: 11_000,
                    kind: EventKind::HealEdge { a: 2, b: 3 },
                },
                Event {
                    at_us: 14_000,
                    kind: EventKind::Degrade {
                        m: 1,
                        factor_pct: 400,
                    },
                },
                Event {
                    at_us: 20_000,
                    kind: EventKind::Migrate { slot: 4, to: 0 },
                },
                Event {
                    at_us: 26_000,
                    kind: EventKind::Restore { m: 1 },
                },
                Event {
                    at_us: 30_000,
                    kind: EventKind::Burst {
                        slot: 0,
                        count: 2,
                        payload: 16,
                    },
                },
            ],
            recovery: false,
        };
        sc.validate().unwrap();
        sc
    }

    #[test]
    fn multi_fault_shrink_trace_is_golden() {
        let cfg = RunConfig {
            disable_forwarding: true,
            ..RunConfig::default()
        };
        let sc = multi_fault_scenario();
        let v = run(&sc, &cfg).violation.expect("multi-fault must violate");
        let res = shrink(&sc, &cfg, &v, 200);
        // The full audit trail: ddmin halves the 8-event schedule down
        // to the single triggering migration, then the workload pass
        // drops the cargo and client/server workloads (index 1 twice —
        // the list shifts after each drop).
        assert_eq!(
            res.steps,
            vec![
                "events 8 -> 4",
                "events 4 -> 2",
                "events 2 -> 1",
                "workload 1 dropped",
                "workload 1 dropped",
            ]
        );
        assert_eq!(
            res.scenario.events,
            vec![Event {
                at_us: 8_000,
                kind: EventKind::Migrate { slot: 1, to: 2 },
            }]
        );
        assert_eq!(
            res.scenario.workloads,
            vec![Workload::PingPong {
                a: 0,
                b: 1,
                limit: 200,
                cpu_us: 40,
            }]
        );
        assert_eq!(res.runs, 10, "the whole shrink costs ten executions");
        // Variant preservation: the shrunk repro trips the same variant
        // as the original run, and still does so on replay.
        assert_eq!(
            std::mem::discriminant(&res.violation),
            std::mem::discriminant(&v)
        );
        let replay = run(&res.scenario, &cfg).violation.expect("replays");
        assert_eq!(
            std::mem::discriminant(&replay),
            std::mem::discriminant(&res.violation)
        );
    }

    #[test]
    fn multi_fault_shrink_is_deterministic() {
        let cfg = RunConfig {
            disable_forwarding: true,
            ..RunConfig::default()
        };
        let sc = multi_fault_scenario();
        let v = run(&sc, &cfg).violation.expect("must violate");
        let a = shrink(&sc, &cfg, &v, 200);
        let b = shrink(&sc, &cfg, &v, 200);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.scenario.to_text(), b.scenario.to_text());
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn drop_workload_remaps_slots() {
        let sc = broken_scenario();
        let dropped = drop_workload(&sc, 1).unwrap();
        assert_eq!(dropped.workloads.len(), 1);
        // Events addressed to the cargo slot (2) are gone; the migration
        // of slot 1 survives untouched.
        assert_eq!(dropped.events.len(), 3);
        assert!(dropped
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Burst { .. })));
    }
}
