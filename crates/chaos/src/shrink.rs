//! Greedy schedule shrinking.
//!
//! Once a scenario trips an invariant, the schedule that produced it is
//! usually mostly noise. The shrinker re-executes candidate reductions
//! and keeps any that still reproduce the *same kind* of violation
//! (matching on the enum variant, so the shrink can't drift from a lost
//! message to an unrelated counter mismatch):
//!
//! 1. **ddmin over events** — try deleting chunks of the schedule,
//!    halving the chunk size down to single events;
//! 2. **workload pruning** — drop whole workloads (remapping event slot
//!    references, deleting events that referenced the dropped slots);
//! 3. repeat until a fixed point or the run budget is exhausted.
//!
//! Everything is deterministic, so "still reproduces" is a plain re-run.

use crate::exec::{run, RunConfig};
use crate::invariants::Violation;
use crate::scenario::{EventKind, Scenario};

/// Result of a shrink campaign.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest scenario found that still violates.
    pub scenario: Scenario,
    /// The violation the shrunk scenario produces.
    pub violation: Violation,
    /// Scenario executions spent.
    pub runs: usize,
}

fn same_kind(a: &Violation, b: &Violation) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

/// Drop workload `wi`, removing events that reference its slots and
/// shifting higher slot references down. Returns `None` if it was the
/// only workload.
fn drop_workload(sc: &Scenario, wi: usize) -> Option<Scenario> {
    if sc.workloads.len() <= 1 {
        return None;
    }
    let first: u16 = sc.workloads[..wi].iter().map(|w| w.slots()).sum();
    let width = sc.workloads[wi].slots();
    let mut out = sc.clone();
    out.workloads.remove(wi);
    out.events.retain_mut(|e| match &mut e.kind {
        EventKind::Migrate { slot, .. } | EventKind::Burst { slot, .. } => {
            if (first..first + width).contains(slot) {
                false
            } else {
                if *slot >= first + width {
                    *slot -= width;
                }
                true
            }
        }
        _ => true,
    });
    Some(out)
}

/// Shrink `sc` (which must produce `original` under `cfg`) within a
/// budget of `max_runs` re-executions.
pub fn shrink(
    sc: &Scenario,
    cfg: &RunConfig,
    original: &Violation,
    max_runs: usize,
) -> ShrinkResult {
    let mut cur = sc.clone();
    let mut cur_violation = original.clone();
    let mut runs = 0usize;

    let reproduces = |cand: &Scenario, runs: &mut usize| -> Option<Violation> {
        *runs += 1;
        run(cand, cfg).violation.filter(|v| same_kind(v, original))
    };

    loop {
        let mut progressed = false;

        // Pass 1: ddmin over the event schedule.
        let mut chunk = (cur.events.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.events.len() && runs < max_runs {
                let mut cand = cur.clone();
                let end = (i + chunk).min(cand.events.len());
                cand.events.drain(i..end);
                if let Some(v) = reproduces(&cand, &mut runs) {
                    cur = cand;
                    cur_violation = v;
                    progressed = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 || runs >= max_runs {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Pass 2: drop whole workloads.
        let mut wi = 0;
        while wi < cur.workloads.len() && runs < max_runs {
            if let Some(cand) = drop_workload(&cur, wi) {
                if let Some(v) = reproduces(&cand, &mut runs) {
                    cur = cand;
                    cur_violation = v;
                    progressed = true;
                    continue; // same index now names the next workload
                }
            }
            wi += 1;
        }

        if !progressed || runs >= max_runs {
            break;
        }
    }

    ShrinkResult {
        scenario: cur,
        violation: cur_violation,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Event, TopoKind, TopoSpec, Workload};

    fn broken_scenario() -> Scenario {
        // A busy schedule where only the migration matters once
        // forwarding is disabled.
        let sc = Scenario {
            seed: 9,
            topo: TopoSpec {
                kind: TopoKind::Mesh,
                n: 3,
                latency_us: 200,
                ns_per_byte: 100,
                loss_pm: 10,
            },
            quantum_us: 3_000,
            horizon_us: 40_000,
            drain_us: 10_000_000,
            workloads: vec![
                Workload::PingPong {
                    a: 0,
                    b: 1,
                    limit: 150,
                    cpu_us: 30,
                },
                Workload::Cargo { m: 2, ballast: 512 },
            ],
            events: vec![
                Event {
                    at_us: 2_000,
                    kind: EventKind::Burst {
                        slot: 2,
                        count: 3,
                        payload: 16,
                    },
                },
                Event {
                    at_us: 4_000,
                    kind: EventKind::Degrade {
                        m: 2,
                        factor_pct: 300,
                    },
                },
                Event {
                    at_us: 6_000,
                    kind: EventKind::Migrate { slot: 1, to: 2 },
                },
                Event {
                    at_us: 9_000,
                    kind: EventKind::Restore { m: 2 },
                },
                Event {
                    at_us: 12_000,
                    kind: EventKind::Burst {
                        slot: 2,
                        count: 2,
                        payload: 8,
                    },
                },
            ],
            recovery: false,
        };
        sc.validate().unwrap();
        sc
    }

    #[test]
    fn shrinks_broken_kernel_to_the_migration() {
        let cfg = RunConfig {
            disable_forwarding: true,
            ..RunConfig::default()
        };
        let sc = broken_scenario();
        let v = run(&sc, &cfg).violation.expect("must violate");
        let res = shrink(&sc, &cfg, &v, 100);
        assert!(
            res.scenario.events.len() <= 2,
            "shrunk to {} events: {:?}",
            res.scenario.events.len(),
            res.scenario.events
        );
        assert!(res
            .scenario
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Migrate { .. })));
        // The shrunk scenario still reproduces.
        let again = run(&res.scenario, &cfg).violation.expect("reproduces");
        assert_eq!(
            std::mem::discriminant(&again),
            std::mem::discriminant(&res.violation)
        );
    }

    #[test]
    fn drop_workload_remaps_slots() {
        let sc = broken_scenario();
        let dropped = drop_workload(&sc, 1).unwrap();
        assert_eq!(dropped.workloads.len(), 1);
        // Events addressed to the cargo slot (2) are gone; the migration
        // of slot 1 survives untouched.
        assert_eq!(dropped.events.len(), 3);
        assert!(dropped
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Burst { .. })));
    }
}
