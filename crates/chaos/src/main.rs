//! `chaos` — scenario fuzzer for the DEMOS/MP cluster.
//!
//! Blind sweeps (the original mode):
//!
//! ```text
//! chaos --seed 42                 # run one seed, print the verdict
//! chaos --iters 200               # sweep seeds 0..200
//! chaos --until-failure           # sweep until a violation (or iter cap)
//! chaos --recovery                # crash-heavy scenarios: permanent
//!                                 # crashes + heartbeat detection +
//!                                 # checkpoint re-homing
//! chaos --fault no-forwarding     # run with the broken-kernel ablation
//! chaos --fault no-recovery       # recovery-machinery ablation
//! ```
//!
//! Coverage-guided campaigns (feedback-driven, multi-threaded):
//!
//! ```text
//! chaos --guided --jobs 4 --execs 800        # fixed-size campaign
//! chaos --guided --jobs 2 --time-budget 60s  # time-boxed (CI smoke)
//! chaos --guided --corpus tests/corpus \
//!       --coverage-report target/coverage.txt \
//!       --corpus-out target/corpus-delta     # seed from + report back
//! chaos --guided --distill target/distilled  # greedy covering corpus
//! ```
//!
//! A campaign's coverage set, corpus pool and bug list are byte-identical
//! for any `--jobs` value at fixed `--execs`; `--time-budget` stops
//! between rounds, so parallelism only changes *how many* rounds fit.
//!
//! Corpus replay gate (CI):
//!
//! ```text
//! chaos --replay tests/corpus --replay tests/corpus/distilled
//! ```
//!
//! On a violation the schedule is shrunk and four artifacts are written
//! (scenario text, Rust test snippet, JSON-lines trace, flight dump);
//! exit code 1. Artifacts never overwrite a different repro that shares
//! a seed — colliding variants get a suffixed name.

use std::path::{Path, PathBuf};

use demos_chaos::{
    campaign, coverage, run, run_capture, run_with_coverage, shrink, CampaignConfig,
    CampaignReport, Generator, RunConfig, Scenario,
};
use demos_obs::features::FeatureSet;

struct Args {
    seed: u64,
    iters: u64,
    until_failure: bool,
    recovery: bool,
    rare: bool,
    fault: RunConfig,
    out: PathBuf,
    quiet: bool,
    guided: bool,
    jobs: usize,
    batch: usize,
    execs: Option<u64>,
    fresh_pct: u64,
    time_budget: Option<std::time::Duration>,
    coverage_report: Option<PathBuf>,
    corpus: Vec<PathBuf>,
    corpus_out: Option<PathBuf>,
    distill: Option<PathBuf>,
    replay: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--iters N] [--until-failure] [--recovery] [--rare]
             [--fault no-forwarding|no-recovery] [--out DIR] [--quiet]
             [--guided] [--jobs N] [--batch N] [--execs N] [--fresh-pct N]
             [--time-budget DUR] [--coverage-report FILE]
             [--corpus DIR]... [--corpus-out DIR] [--distill DIR]
             [--replay DIR]...
  --guided           coverage-guided campaign instead of a blind sweep
  --jobs N           worker threads for --guided (default 1)
  --batch N          candidates per round (default 16)
  --execs N          execution ceiling for --guided
  --time-budget DUR  stop after DUR (e.g. 60s, 500ms, 2m), between rounds
  --fresh-pct N      percent of candidates drawn fresh, not mutated (default 20)
  --rare             rare-interleaving generators (the E17 regime)
  --coverage-report  write the campaign (or replay) coverage report here
  --corpus DIR       seed the campaign from DIR's *.seed files
  --corpus-out DIR   write newly-distilled corpus entries (delta) to DIR
  --distill DIR      write the full distilled covering corpus to DIR
  --shards N         run every cluster event loop on N shard threads
                     (verdicts and fingerprints are identical to N=1)
  --lossless         zero the scenarios' link loss so the sharded
                     executor takes its parallel path (lossy links fall
                     back to the sequential loop)
  --replay DIR       replay DIR's *.seed files and gate on a clean pass"
    );
    std::process::exit(2)
}

fn parse_duration(s: &str) -> Option<std::time::Duration> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse().ok().map(std::time::Duration::from_millis);
    }
    if let Some(m) = s.strip_suffix('m') {
        return m
            .parse()
            .ok()
            .map(|v: u64| std::time::Duration::from_secs(v * 60));
    }
    let secs = s.strip_suffix('s').unwrap_or(s);
    secs.parse().ok().map(std::time::Duration::from_secs)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0,
        iters: 1,
        until_failure: false,
        recovery: false,
        rare: false,
        fault: RunConfig::default(),
        out: PathBuf::from("target/chaos"),
        quiet: false,
        guided: false,
        jobs: 1,
        batch: 16,
        execs: None,
        fresh_pct: 20,
        time_budget: None,
        coverage_report: None,
        corpus: Vec::new(),
        corpus_out: None,
        distill: None,
        replay: Vec::new(),
    };
    let mut explicit_iters = false;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => args.seed = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--iters" => {
                args.iters = next(&mut it).parse().unwrap_or_else(|_| usage());
                explicit_iters = true;
            }
            "--until-failure" => args.until_failure = true,
            "--recovery" => args.recovery = true,
            "--rare" => args.rare = true,
            "--fault" => match next(&mut it).as_str() {
                "no-forwarding" => args.fault.disable_forwarding = true,
                "no-recovery" => {
                    // The ablation only bites on recovery scenarios.
                    args.recovery = true;
                    args.fault.disable_recovery = true;
                }
                _ => usage(),
            },
            "--shards" => args.fault.shards = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--lossless" => args.fault.lossless = true,
            "--out" => args.out = PathBuf::from(next(&mut it)),
            "--quiet" => args.quiet = true,
            "--guided" => args.guided = true,
            "--jobs" => args.jobs = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--execs" => args.execs = Some(next(&mut it).parse().unwrap_or_else(|_| usage())),
            "--fresh-pct" => args.fresh_pct = next(&mut it).parse().unwrap_or_else(|_| usage()),
            "--time-budget" => {
                args.time_budget = Some(parse_duration(&next(&mut it)).unwrap_or_else(|| usage()))
            }
            "--coverage-report" => args.coverage_report = Some(PathBuf::from(next(&mut it))),
            "--corpus" => args.corpus.push(PathBuf::from(next(&mut it))),
            "--corpus-out" => args.corpus_out = Some(PathBuf::from(next(&mut it))),
            "--distill" => args.distill = Some(PathBuf::from(next(&mut it))),
            "--replay" => args.replay.push(PathBuf::from(next(&mut it))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.batch == 0 || args.jobs == 0 {
        usage();
    }
    if args.until_failure && !explicit_iters {
        args.iters = u64::MAX;
    }
    if args.guided && args.execs.is_none() && args.time_budget.is_none() {
        // A guided run needs *some* stop condition.
        args.execs = Some(512);
    }
    args
}

/// Load every `*.seed` file under `dir` (non-recursive), path-sorted for
/// determinism.
fn load_corpus(dir: &Path) -> Vec<(PathBuf, Scenario)> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seed"))
            .collect(),
        Err(e) => {
            eprintln!("corpus dir {}: {e}", dir.display());
            std::process::exit(2)
        }
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("{}: {e}", p.display());
                std::process::exit(2)
            });
            let sc = Scenario::from_corpus(&text).unwrap_or_else(|e| {
                eprintln!("{}: {e}", p.display());
                std::process::exit(2)
            });
            (p, sc)
        })
        .collect()
}

/// Replay-gate mode: every corpus entry must pass every invariant.
fn replay_gate(args: &Args) -> ! {
    let mut union = FeatureSet::new();
    let mut total = 0usize;
    let mut failed = 0usize;
    for dir in &args.replay {
        for (path, sc) in load_corpus(dir) {
            total += 1;
            let (report, cov) = run_with_coverage(&sc, &args.fault);
            union.merge(&cov);
            match report.violation {
                None => {
                    if !args.quiet {
                        println!("{}: ok (fp {:016x})", path.display(), report.fingerprint);
                    }
                }
                Some(v) => {
                    failed += 1;
                    println!("{}: VIOLATION — {v}", path.display());
                }
            }
        }
    }
    if let Some(path) = &args.coverage_report {
        let report = coverage::render_report(&union, total as u64, 0, 0, failed);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("coverage report {}: {e}", path.display());
            std::process::exit(2)
        }
    }
    println!(
        "replayed {total} corpus entr{} ({} feature(s)): {}",
        if total == 1 { "y" } else { "ies" },
        union.len(),
        if failed == 0 {
            "all clean".to_string()
        } else {
            format!("{failed} FAILED")
        }
    );
    std::process::exit(if failed == 0 { 0 } else { 1 })
}

/// Shrink each campaign bug (first occurrence per violation variant) and
/// write repro artifacts.
fn emit_bug_artifacts(args: &Args, report: &CampaignReport) {
    let mut seen: Vec<&'static str> = Vec::new();
    for bug in &report.bugs {
        if seen.contains(&bug.violation.slug()) {
            continue;
        }
        seen.push(bug.violation.slug());
        println!(
            "bug after {} exec(s): {} (seed {})",
            bug.execs_at, bug.violation, bug.scenario.seed
        );
        let res = shrink(&bug.scenario, &args.fault, &bug.violation, 200);
        println!(
            "  shrunk to {} event(s) / {} workload(s) in {} runs [{}]",
            res.scenario.events.len(),
            res.scenario.workloads.len(),
            res.runs,
            res.steps.join(", ")
        );
        let (final_report, trace, flight) = run_capture(&res.scenario, &args.fault);
        let violation = final_report.violation.unwrap_or(res.violation);
        match demos_chaos::write_artifacts(
            &args.out,
            &res.scenario,
            &args.fault,
            &violation,
            &trace,
            &flight,
        ) {
            Ok(a) => println!("  repro: {}", a.scenario.display()),
            Err(e) => eprintln!("  failed to write artifacts: {e}"),
        }
    }
}

/// Write a distilled corpus (scenario texts + the FEATURES.txt manifest)
/// into `dir`. With `delta_vs`, only entries whose text is not already in
/// that set are written (the corpus-delta artifact).
fn write_distilled(
    dir: &Path,
    report: &CampaignReport,
    delta_vs: Option<&[String]>,
) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0usize;
    for e in report.pool.distill() {
        let text = e.scenario.to_text();
        if delta_vs.is_some_and(|known| known.contains(&text)) {
            continue;
        }
        let name = format!("distilled-{:016x}.seed", e.fingerprint);
        std::fs::write(dir.join(name), &text)?;
        written += 1;
    }
    std::fs::write(dir.join("FEATURES.txt"), report.pool.coverage().to_text())?;
    Ok(written)
}

/// Coverage-guided campaign mode.
fn guided(args: &Args) -> ! {
    let corpus_texts: Vec<String>;
    let corpus: Vec<Scenario> = {
        let mut loaded = Vec::new();
        for dir in &args.corpus {
            loaded.extend(load_corpus(dir).into_iter().map(|(_, sc)| sc));
        }
        corpus_texts = loaded.iter().map(|sc| sc.to_text()).collect();
        loaded
    };
    let generator = match (args.recovery, args.rare) {
        (false, false) => Generator::Classic,
        (true, false) => Generator::Recovery,
        (false, true) => Generator::RareClassic,
        (true, true) => Generator::RareRecovery,
    };
    let cfg = CampaignConfig {
        seed: args.seed,
        generator,
        fault: args.fault,
        jobs: args.jobs,
        batch: args.batch,
        max_execs: args.execs,
        fresh_pct: args.fresh_pct,
        corpus,
        stop_on_violation: args.until_failure,
    };
    // lint:allow(D002 wall-clock time budget for the operator; polled between rounds only, never inside the seeded simulation)
    let started = std::time::Instant::now();
    let budget = args.time_budget;
    let keep_going = move || match budget {
        Some(b) => started.elapsed() < b,
        None => true,
    };
    let report = campaign(&cfg, &keep_going);

    println!(
        "campaign: {} exec(s), {} round(s), {} feature(s), pool {}, {} bug(s), digest {:016x}",
        report.execs,
        report.rounds,
        report.coverage.len(),
        report.pool.len(),
        report.bugs.len(),
        report.fingerprint()
    );
    if !args.quiet {
        for (cl, n) in report.coverage.class_counts() {
            println!("  {:<18} {n}", demos_obs::features::class_name(cl));
        }
    }
    if let Some(path) = &args.coverage_report {
        let text = coverage::render_report(
            &report.coverage,
            report.execs,
            report.rounds,
            report.pool.len(),
            report.bugs.len(),
        );
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("coverage report {}: {e}", path.display());
            std::process::exit(2)
        }
        println!("coverage report: {}", path.display());
    }
    if let Some(dir) = &args.distill {
        match write_distilled(dir, &report, None) {
            Ok(n) => println!(
                "distilled corpus: {n} entr{} -> {}",
                plural_y(n),
                dir.display()
            ),
            Err(e) => {
                eprintln!("distill {}: {e}", dir.display());
                std::process::exit(2)
            }
        }
    }
    if let Some(dir) = &args.corpus_out {
        match write_distilled(dir, &report, Some(&corpus_texts)) {
            Ok(n) => println!("corpus delta: {n} entr{} -> {}", plural_y(n), dir.display()),
            Err(e) => {
                eprintln!("corpus delta {}: {e}", dir.display());
                std::process::exit(2)
            }
        }
    }
    emit_bug_artifacts(args, &report);
    std::process::exit(if report.bugs.is_empty() { 0 } else { 1 })
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn main() {
    let args = parse_args();
    if !args.replay.is_empty() {
        replay_gate(&args);
    }
    if args.guided {
        guided(&args);
    }
    // lint:allow(D002 operator progress display only; never feeds the seeded simulation)
    let started = std::time::Instant::now();
    let mut passed = 0u64;
    let mut i = 0u64;
    while i < args.iters {
        let seed = args.seed.wrapping_add(i);
        let sc = match (args.recovery, args.rare) {
            (false, false) => Scenario::generate(seed),
            (true, false) => Scenario::generate_recovery(seed),
            (false, true) => Scenario::generate_rare(seed),
            (true, true) => Scenario::generate_rare_recovery(seed),
        };
        let report = run(&sc, &args.fault);
        match report.violation {
            None => {
                passed += 1;
                if !args.quiet {
                    println!(
                        "seed {seed}: ok ({} events, {} skipped, {} us virtual, fp {:016x})",
                        report.events_applied,
                        report.events_skipped,
                        report.end_us,
                        report.fingerprint
                    );
                }
            }
            Some(v) => {
                println!("seed {seed}: VIOLATION — {v}");
                println!("shrinking…");
                let res = shrink(&sc, &args.fault, &v, 200);
                println!(
                    "shrunk to {} event(s) / {} workload(s) in {} runs [{}]: {}",
                    res.scenario.events.len(),
                    res.scenario.workloads.len(),
                    res.runs,
                    res.steps.join(", "),
                    res.violation
                );
                // Re-run the minimized scenario to capture its trace and
                // the machines' flight recorders.
                let (final_report, trace, flight) = run_capture(&res.scenario, &args.fault);
                let violation = final_report.violation.unwrap_or(res.violation);
                match demos_chaos::write_artifacts(
                    &args.out,
                    &res.scenario,
                    &args.fault,
                    &violation,
                    &trace,
                    &flight,
                ) {
                    Ok(a) => {
                        println!("repro scenario: {}", a.scenario.display());
                        println!("repro test:     {}", a.snippet.display());
                        println!("repro trace:    {}", a.trace.display());
                        println!("repro flight:   {}", a.flight.display());
                        println!("--- minimized repro ---");
                        print!(
                            "{}",
                            demos_chaos::rust_snippet(&res.scenario, &args.fault, &violation)
                        );
                    }
                    Err(e) => eprintln!("failed to write artifacts: {e}"),
                }
                std::process::exit(1);
            }
        }
        i += 1;
    }
    println!(
        "{passed}/{} seed(s) passed in {:.1}s",
        args.iters,
        started.elapsed().as_secs_f64()
    );
}
