//! `chaos` — seeded scenario fuzzer for the DEMOS/MP cluster.
//!
//! ```text
//! chaos --seed 42                 # run one seed, print the verdict
//! chaos --iters 200               # sweep seeds 0..200 (CI smoke run)
//! chaos --seed 7 --iters 50       # sweep seeds 7..57
//! chaos --until-failure           # sweep until a violation (or iter cap)
//! chaos --recovery                # crash-heavy scenarios: permanent
//!                                 # crashes + heartbeat detection +
//!                                 # checkpoint re-homing
//! chaos --fault no-forwarding     # run with the broken-kernel ablation
//! chaos --fault no-recovery       # recovery-machinery ablation
//! chaos --out target/chaos        # artifact directory for repros
//! ```
//!
//! On a violation the schedule is shrunk and three artifacts are written
//! (scenario text, Rust test snippet, JSON-lines trace); exit code 1.

use std::path::PathBuf;

use demos_chaos::{run, run_capture, shrink, RunConfig, Scenario};

struct Args {
    seed: u64,
    iters: u64,
    until_failure: bool,
    recovery: bool,
    fault: RunConfig,
    out: PathBuf,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--iters N] [--until-failure] [--recovery] \
         [--fault no-forwarding|no-recovery] [--out DIR] [--quiet]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0,
        iters: 1,
        until_failure: false,
        recovery: false,
        fault: RunConfig::default(),
        out: PathBuf::from("target/chaos"),
        quiet: false,
    };
    let mut explicit_iters = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--iters" => {
                args.iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                explicit_iters = true;
            }
            "--until-failure" => args.until_failure = true,
            "--recovery" => args.recovery = true,
            "--fault" => match it.next().as_deref() {
                Some("no-forwarding") => args.fault.disable_forwarding = true,
                Some("no-recovery") => {
                    // The ablation only bites on recovery scenarios.
                    args.recovery = true;
                    args.fault.disable_recovery = true;
                }
                _ => usage(),
            },
            "--out" => args.out = it.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.until_failure && !explicit_iters {
        args.iters = u64::MAX;
    }
    args
}

fn main() {
    let args = parse_args();
    // lint:allow(D002 operator progress display only; never feeds the seeded simulation)
    let started = std::time::Instant::now();
    let mut passed = 0u64;
    let mut i = 0u64;
    while i < args.iters {
        let seed = args.seed.wrapping_add(i);
        let sc = if args.recovery {
            Scenario::generate_recovery(seed)
        } else {
            Scenario::generate(seed)
        };
        let report = run(&sc, &args.fault);
        match report.violation {
            None => {
                passed += 1;
                if !args.quiet {
                    println!(
                        "seed {seed}: ok ({} events, {} skipped, {} us virtual, fp {:016x})",
                        report.events_applied,
                        report.events_skipped,
                        report.end_us,
                        report.fingerprint
                    );
                }
            }
            Some(v) => {
                println!("seed {seed}: VIOLATION — {v}");
                println!("shrinking…");
                let res = shrink(&sc, &args.fault, &v, 200);
                println!(
                    "shrunk to {} event(s) / {} workload(s) in {} runs: {}",
                    res.scenario.events.len(),
                    res.scenario.workloads.len(),
                    res.runs,
                    res.violation
                );
                // Re-run the minimized scenario to capture its trace and
                // the machines' flight recorders.
                let (final_report, trace, flight) = run_capture(&res.scenario, &args.fault);
                let violation = final_report.violation.unwrap_or(res.violation);
                match demos_chaos::write_artifacts(
                    &args.out,
                    &res.scenario,
                    &args.fault,
                    &violation,
                    &trace,
                    &flight,
                ) {
                    Ok(a) => {
                        println!("repro scenario: {}", a.scenario.display());
                        println!("repro test:     {}", a.snippet.display());
                        println!("repro trace:    {}", a.trace.display());
                        println!("repro flight:   {}", a.flight.display());
                        println!("--- minimized repro ---");
                        print!(
                            "{}",
                            demos_chaos::rust_snippet(&res.scenario, &args.fault, &violation)
                        );
                    }
                    Err(e) => eprintln!("failed to write artifacts: {e}"),
                }
                std::process::exit(1);
            }
        }
        i += 1;
    }
    println!(
        "{passed}/{} seed(s) passed in {:.1}s",
        args.iters,
        started.elapsed().as_secs_f64()
    );
}
