//! The corpus pool: scenarios worth mutating, and its distiller.
//!
//! A scenario enters the pool only if it ran **clean** (no violation —
//! violating schedules become repro artifacts, not corpus, so the
//! checked-in corpus always replays green) and exhibited at least one
//! feature the pool had not seen. Selection for mutation is weighted by
//! each entry's *gain* — how many features were novel when it was
//! admitted — so the schedules that opened new territory get mutated
//! most.
//!
//! [`Pool::distill`] computes a greedy minimal covering subset: the
//! smallest set of entries (greedy approximation, deterministic
//! tie-breaking) whose united features equal the whole pool's coverage.
//! That subset is what gets checked into `tests/corpus/distilled/`.

use demos_obs::features::FeatureSet;
use rand::rngs::StdRng;
use rand::Rng;

use crate::scenario::Scenario;

/// One admitted corpus entry.
#[derive(Clone, Debug)]
pub struct PoolEntry {
    /// The scenario itself (stable text form is `scenario.to_text()`).
    pub scenario: Scenario,
    /// Features this entry's run exhibited.
    pub features: FeatureSet,
    /// Run fingerprint (for artifact naming and dedup).
    pub fingerprint: u64,
    /// Features that were novel at admission time.
    pub gain: usize,
    /// Where the entry came from (`corpus`, `fresh`, `mutant r<N>`).
    pub origin: String,
}

/// The corpus pool.
#[derive(Clone, Debug, Default)]
pub struct Pool {
    entries: Vec<PoolEntry>,
    coverage: FeatureSet,
    fingerprints: std::collections::BTreeSet<u64>,
}

impl Pool {
    /// Empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Entries admitted so far, in admission order.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Union of all admitted entries' features.
    pub fn coverage(&self) -> &FeatureSet {
        &self.coverage
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry has been admitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admit a clean run if it covers new ground. Returns the number of
    /// novel features (0 means rejected). Runs whose fingerprint exactly
    /// matches an admitted entry are rejected outright — a byte-identical
    /// execution cannot contribute anything new.
    pub fn offer(
        &mut self,
        scenario: Scenario,
        features: FeatureSet,
        fingerprint: u64,
        origin: &str,
    ) -> usize {
        if self.fingerprints.contains(&fingerprint) {
            return 0;
        }
        let gain = features.novel_vs(&self.coverage).len();
        if gain == 0 {
            return 0;
        }
        self.coverage.merge(&features);
        self.fingerprints.insert(fingerprint);
        self.entries.push(PoolEntry {
            scenario,
            features,
            fingerprint,
            gain,
            origin: origin.to_string(),
        });
        gain
    }

    /// Pick an entry to mutate, weighted by gain. Deterministic given
    /// the RNG state. Panics on an empty pool — callers draw fresh
    /// scenarios instead when the pool is empty.
    pub fn select<'a>(&'a self, rng: &mut StdRng) -> &'a PoolEntry {
        assert!(!self.entries.is_empty(), "select on empty pool");
        let total: u64 = self.entries.iter().map(|e| e.gain as u64 + 1).sum();
        let mut roll = rng.gen_range(0..total);
        for e in &self.entries {
            let w = e.gain as u64 + 1;
            if roll < w {
                return e;
            }
            roll -= w;
        }
        // Unreachable: the weights sum to `total`.
        &self.entries[self.entries.len() - 1]
    }

    /// Greedy minimal covering subset: repeatedly take the entry
    /// covering the most still-uncovered features (ties: earliest
    /// admission), until the subset's union equals the pool coverage.
    pub fn distill(&self) -> Vec<&PoolEntry> {
        let mut uncovered = self.coverage.clone();
        let mut picked: Vec<&PoolEntry> = Vec::new();
        let mut used = vec![false; self.entries.len()];
        while !uncovered.is_empty() {
            let mut best: Option<(usize, usize)> = None; // (covers, index)
            for (i, e) in self.entries.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let covers = e.features.iter().filter(|f| uncovered.contains(*f)).count();
                if covers > 0 && best.map(|(c, _)| covers > c).unwrap_or(true) {
                    best = Some((covers, i));
                }
            }
            let Some((_, i)) = best else { break };
            used[i] = true;
            for f in self.entries[i].features.iter() {
                uncovered.remove(f);
            }
            picked.push(&self.entries[i]);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_obs::features::{class, feature};
    use rand::SeedableRng;

    fn set(ids: &[u64]) -> FeatureSet {
        ids.iter()
            .map(|&i| feature(class::KIND_EDGE, i as u32, 0))
            .collect()
    }

    #[test]
    fn offer_admits_only_novelty() {
        let mut p = Pool::new();
        let sc = Scenario::generate(1);
        assert_eq!(p.offer(sc.clone(), set(&[1, 2]), 10, "fresh"), 2);
        // Subset of existing coverage: rejected.
        assert_eq!(p.offer(sc.clone(), set(&[2]), 11, "fresh"), 0);
        // One new feature: admitted with gain 1.
        assert_eq!(p.offer(sc.clone(), set(&[2, 3]), 12, "mutant"), 1);
        // Duplicate fingerprint: rejected even with novel features.
        assert_eq!(p.offer(sc, set(&[9]), 10, "fresh"), 0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.coverage().len(), 3);
    }

    #[test]
    fn select_is_deterministic_and_biased_to_gain() {
        let mut p = Pool::new();
        p.offer(Scenario::generate(1), set(&[1, 2, 3, 4, 5, 6, 7]), 1, "a");
        p.offer(Scenario::generate(2), set(&[8]), 2, "b");
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut hits = [0usize; 2];
        for _ in 0..200 {
            let ea = p.select(&mut a);
            let eb = p.select(&mut b);
            assert_eq!(ea.fingerprint, eb.fingerprint);
            hits[if ea.fingerprint == 1 { 0 } else { 1 }] += 1;
        }
        assert!(hits[0] > hits[1], "high-gain entry picked more: {hits:?}");
        assert!(hits[1] > 0, "low-gain entry still reachable: {hits:?}");
    }

    #[test]
    fn distill_covers_everything_with_fewer_entries() {
        let mut p = Pool::new();
        p.offer(Scenario::generate(1), set(&[1, 2, 3]), 1, "a");
        p.offer(Scenario::generate(2), set(&[3, 4]), 2, "b");
        p.offer(Scenario::generate(3), set(&[4, 5]), 3, "c");
        p.offer(Scenario::generate(4), set(&[1, 5, 6]), 4, "d");
        let picked = p.distill();
        let mut union = FeatureSet::new();
        for e in &picked {
            union.merge(&e.features);
        }
        assert_eq!(union, *p.coverage(), "distilled set covers the pool");
        assert!(picked.len() < p.len(), "{} < {}", picked.len(), p.len());
        // Deterministic.
        let again: Vec<u64> = p.distill().iter().map(|e| e.fingerprint).collect();
        let first: Vec<u64> = picked.iter().map(|e| e.fingerprint).collect();
        assert_eq!(first, again);
    }
}
