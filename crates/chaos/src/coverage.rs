//! Chaos-level schedule coverage: the fuzzer's feedback signal.
//!
//! `demos_obs::features` owns the packed feature ids and the
//! record-level decoding; `demos_sim::coverage` extracts the
//! trace-visible classes plus recovery-episode overlap. This module adds
//! the classes only the harness can see — which *fault kind* landed in
//! which §3.1 *migration phase* (the scheduled fault times live in the
//! scenario, the phases in the trace), and which invariant-violation
//! variant a run produced — and assembles them into the per-run
//! [`FeatureSet`] the corpus pool steers by.

use demos_kernel::{MigrationPhase, TraceEvent, TraceRecord};
use demos_obs::features::{class, feature, unpack, FeatureSet};

use crate::invariants::Violation;
use crate::scenario::EventKind;

/// Stable code for a fault kind (the `FAULT_PHASE` feature's `a`
/// operand). Append-only.
pub fn fault_code(kind: EventKind) -> u32 {
    match kind {
        EventKind::Migrate { .. } => 0,
        EventKind::Burst { .. } => 1,
        EventKind::Partition { .. } => 2,
        EventKind::HealEdge { .. } => 3,
        EventKind::Crash { .. } => 4,
        EventKind::Revive { .. } => 5,
        EventKind::Degrade { .. } => 6,
        EventKind::Restore { .. } => 7,
    }
}

/// Human name of a [`fault_code`] value.
pub fn fault_name(code: u32) -> &'static str {
    match code {
        0 => "migrate",
        1 => "burst",
        2 => "partition",
        3 => "heal",
        4 => "crash",
        5 => "revive",
        6 => "degrade",
        7 => "restore",
        _ => "unknown",
    }
}

/// `fault × phase` features for a run: for every *applied* schedule
/// event, pair its fault kind with the phase of each migration in
/// flight at that instant (phase + 1; 0 when no migration was open).
/// "Crash during `pending_forwarded`" and "partition during
/// `state_transferred`" become distinct, countable coverage points.
pub fn fault_phase_features(
    records: &[TraceRecord],
    applied: &[(u64, EventKind)],
    out: &mut FeatureSet,
) {
    // Walk faults and trace in lockstep (both time-ordered), keeping the
    // open-migration table current as of each fault instant.
    let mut open: std::collections::BTreeMap<demos_types::ProcessId, MigrationPhase> =
        std::collections::BTreeMap::new();
    let mut ri = 0usize;
    for &(at_us, kind) in applied {
        while ri < records.len() && records[ri].at.as_micros() <= at_us {
            if let TraceEvent::Migration { pid, phase, .. } = records[ri].event {
                match phase {
                    MigrationPhase::Restarted
                    | MigrationPhase::Aborted
                    | MigrationPhase::Rejected => {
                        open.remove(&pid);
                    }
                    p => {
                        open.insert(pid, p);
                    }
                }
            }
            ri += 1;
        }
        let fc = fault_code(kind);
        if open.is_empty() {
            out.insert(feature(class::FAULT_PHASE, fc, 0));
        } else {
            for &phase in open.values() {
                let code = demos_sim::flight::phase_code(phase) as u32 + 1;
                out.insert(feature(class::FAULT_PHASE, fc, code));
            }
        }
    }
}

/// The `VIOLATION` feature for a verdict.
pub fn violation_feature(v: &Violation) -> u64 {
    feature(class::VIOLATION, v.code(), 0)
}

/// Human rendering of a feature id, refining the generic obs rendering
/// with the chaos fault alphabet.
pub fn describe(f: u64) -> String {
    let (cl, a, _) = unpack(f);
    let base = demos_obs::features::describe(f);
    match cl {
        class::FAULT_PHASE => base.replace(&format!("fault#{a}"), fault_name(a)),
        class::VIOLATION => base.replace(&format!("violation#{a}"), violation_name(a)),
        _ => base,
    }
}

fn violation_name(code: u32) -> &'static str {
    match code {
        0 => "violation:lost",
        1 => "violation:duplicated",
        2 => "violation:nondeliverable",
        3 => "violation:fwdcycle",
        4 => "violation:vanished",
        5 => "violation:multiplied",
        6 => "violation:linkdiverged",
        7 => "violation:transport",
        8 => "violation:notquiescent",
        9 => "violation:workload",
        _ => "violation:unknown",
    }
}

/// Render a deterministic coverage report (the `--coverage-report`
/// artifact): totals, per-class counts, then every feature with its
/// description, in id order.
pub fn render_report(
    set: &FeatureSet,
    execs: u64,
    rounds: u64,
    pool: usize,
    bugs: usize,
) -> String {
    let mut s = String::new();
    s.push_str("demos-chaos coverage v1\n");
    s.push_str(&format!("execs {execs}\n"));
    s.push_str(&format!("rounds {rounds}\n"));
    s.push_str(&format!("pool {pool}\n"));
    s.push_str(&format!("bugs {bugs}\n"));
    s.push_str(&format!("features {}\n", set.len()));
    for (cl, n) in set.class_counts() {
        s.push_str(&format!(
            "class {} {}\n",
            demos_obs::features::class_name(cl),
            n
        ));
    }
    for f in set.iter() {
        s.push_str(&format!("feat {f:016x} {}\n", describe(f)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::{MachineId, ProcessId, Time};

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: u,
        }
    }

    fn mig(at: u64, u: u32, phase: MigrationPhase) -> TraceRecord {
        TraceRecord {
            at: Time(at),
            machine: MachineId(0),
            event: TraceEvent::Migration {
                pid: pid(u),
                phase,
                bytes: 0,
            },
        }
    }

    #[test]
    fn faults_pair_with_open_phases_only() {
        let records = vec![
            mig(1_000, 1, MigrationPhase::Frozen),
            mig(2_000, 1, MigrationPhase::Offered),
            mig(5_000, 1, MigrationPhase::Restarted),
        ];
        let applied = vec![
            (
                500,
                EventKind::Burst {
                    slot: 0,
                    count: 1,
                    payload: 0,
                },
            ),
            (3_000, EventKind::Partition { a: 0, b: 1 }),
            (6_000, EventKind::Crash { m: 0 }),
        ];
        let mut set = FeatureSet::new();
        fault_phase_features(&records, &applied, &mut set);
        // Burst before any migration: idle pairing.
        assert!(set.contains(feature(class::FAULT_PHASE, 1, 0)));
        // Partition landed while the migration sat in Offered.
        let offered = demos_sim::flight::phase_code(MigrationPhase::Offered) as u32 + 1;
        assert!(set.contains(feature(class::FAULT_PHASE, 2, offered)));
        // Crash after Restarted: the migration is closed again.
        assert!(set.contains(feature(class::FAULT_PHASE, 4, 0)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn descriptions_use_fault_and_violation_names() {
        let f = feature(class::FAULT_PHASE, 4, 0);
        assert!(describe(f).starts_with("crash x idle"), "{}", describe(f));
        let v = violation_feature(&Violation::ProcessVanished { pid: pid(1) });
        assert!(describe(v).contains("vanished"), "{}", describe(v));
    }

    #[test]
    fn report_is_deterministic_and_labelled() {
        let mut set = FeatureSet::new();
        set.insert(feature(class::FAULT_PHASE, 0, 0));
        set.insert(feature(class::VIOLATION, 4, 0));
        let a = render_report(&set, 10, 2, 3, 1);
        let b = render_report(&set, 10, 2, 3, 1);
        assert_eq!(a, b);
        assert!(a.contains("features 2"));
        assert!(a.contains("class fault-phase 1"));
        assert!(a.contains("migrate x idle"));
    }
}
