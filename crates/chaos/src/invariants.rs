//! Continuous cluster invariants.
//!
//! The harness steps the cluster one virtual-time quantum at a time and
//! runs these checks between quanta — during the migration window, not
//! just at quiescence. Two tiers:
//!
//! * **continuous** — must hold at *every* instant: forwarding chains are
//!   acyclic and bounded, no process vanishes or multiplies beyond the
//!   two-copy migration window, transport counters conserve frames, no
//!   message is delivered twice, nothing goes non-deliverable;
//! * **final** — hold only at quiescence, after faults are lifted and
//!   queues drain: every submitted message was delivered, link hints
//!   converge (chain-reach the true host), workload-level exactly-once
//!   counters match, and the transport is idle.
//!
//! A note on transport sanity: the obvious "retransmits ≥ dup-acks" is
//! *unsound* here — data frames of different sizes overtake each other
//! (transit time is size-dependent), and an overtaken frame produces a
//! dup-ack with zero retransmissions. The sound counterparts checked
//! instead: exact frame conservation (`sent = delivered + dropped +
//! in-flight`), `dedup drops ≤ retransmits` (only retransmission creates
//! duplicates; the network never does), and class totals summing to the
//! whole.

use demos_kernel::LinkAttrsExt;
use demos_sim::cluster::Cluster;
use demos_sim::programs::{cargo_received, client_stats, pingpong_rallies};
use demos_sim::span::ledger_of;
use demos_types::{LinkAttrs, MachineId, ProcessId};

use crate::scenario::Workload;

/// A detected invariant violation. `Display` gives the one-line verdict
/// the CLI prints; the variant fields carry enough to debug from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Messages submitted but neither delivered nor accounted as failed,
    /// at quiescence.
    Lost {
        /// How many correlation ids were lost.
        count: usize,
        /// Debug rendering of the first few.
        sample: String,
    },
    /// A message was delivered more than once without an intervening
    /// forwarding hop.
    Duplicated {
        /// How many correlation ids were duplicated.
        count: usize,
        /// Debug rendering of the first few.
        sample: String,
    },
    /// A message was returned non-deliverable even though its destination
    /// process exists (the forwarding-disabled ablation trips this).
    NonDeliverable {
        /// Cluster-wide non-deliverable count.
        count: u64,
    },
    /// A forwarding-address walk revisited a machine.
    ForwardingCycle {
        /// The process whose chain cycles.
        pid: ProcessId,
        /// The machines visited, in order.
        chain: Vec<u16>,
    },
    /// A watched process is on no live machine.
    ProcessVanished {
        /// The missing process.
        pid: ProcessId,
    },
    /// A watched process is resident on more than one machine outside the
    /// two-copy migration window.
    ProcessMultiplied {
        /// The multiplied process.
        pid: ProcessId,
        /// How many machines host it.
        count: usize,
    },
    /// A link's location hint does not chain-reach the process's true
    /// host at quiescence.
    LinkDiverged {
        /// Machine holding the stale link.
        machine: u16,
        /// The link's target process.
        pid: ProcessId,
        /// The hint the chain walk started from.
        hint: u16,
    },
    /// Transport counters fail conservation or ordering laws.
    TransportCounters {
        /// Which law broke, with the numbers.
        detail: String,
    },
    /// The cluster failed to drain within the scenario's budget.
    NotQuiescent {
        /// Frames still in flight on the wire.
        in_flight: usize,
    },
    /// A workload-level exactly-once counter came out wrong.
    WorkloadInvariant {
        /// Which workload expectation broke, with the numbers.
        detail: String,
    },
}

impl Violation {
    /// Filename-safe variant slug: repro artifacts of different variants
    /// must never overwrite each other, so the variant is part of the
    /// artifact name when a seed produces more than one.
    pub fn slug(&self) -> &'static str {
        match self {
            Violation::Lost { .. } => "lost",
            Violation::Duplicated { .. } => "duplicated",
            Violation::NonDeliverable { .. } => "nondeliverable",
            Violation::ForwardingCycle { .. } => "fwdcycle",
            Violation::ProcessVanished { .. } => "vanished",
            Violation::ProcessMultiplied { .. } => "multiplied",
            Violation::LinkDiverged { .. } => "linkdiverged",
            Violation::TransportCounters { .. } => "transport",
            Violation::NotQuiescent { .. } => "notquiescent",
            Violation::WorkloadInvariant { .. } => "workload",
        }
    }

    /// Stable small code for the variant (the coverage map's
    /// `VIOLATION` feature operand). Append-only, like wire constants.
    pub fn code(&self) -> u32 {
        match self {
            Violation::Lost { .. } => 0,
            Violation::Duplicated { .. } => 1,
            Violation::NonDeliverable { .. } => 2,
            Violation::ForwardingCycle { .. } => 3,
            Violation::ProcessVanished { .. } => 4,
            Violation::ProcessMultiplied { .. } => 5,
            Violation::LinkDiverged { .. } => 6,
            Violation::TransportCounters { .. } => 7,
            Violation::NotQuiescent { .. } => 8,
            Violation::WorkloadInvariant { .. } => 9,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Lost { count, sample } => {
                write!(f, "{count} message(s) lost (e.g. {sample})")
            }
            Violation::Duplicated { count, sample } => {
                write!(f, "{count} message(s) delivered twice (e.g. {sample})")
            }
            Violation::NonDeliverable { count } => {
                write!(f, "{count} message(s) bounced non-deliverable")
            }
            Violation::ForwardingCycle { pid, chain } => {
                write!(f, "forwarding cycle for {pid:?} via machines {chain:?}")
            }
            Violation::ProcessVanished { pid } => write!(f, "process {pid:?} vanished"),
            Violation::ProcessMultiplied { pid, count } => {
                write!(f, "process {pid:?} resident on {count} machines")
            }
            Violation::LinkDiverged { machine, pid, hint } => write!(
                f,
                "link on m{machine} to {pid:?} hints m{hint}, which does not chain to the host"
            ),
            Violation::TransportCounters { detail } => write!(f, "transport counters: {detail}"),
            Violation::NotQuiescent { in_flight } => {
                write!(f, "cluster failed to drain ({in_flight} frames in flight)")
            }
            Violation::WorkloadInvariant { detail } => write!(f, "workload counters: {detail}"),
        }
    }
}

fn sample_corrs(corrs: &[demos_types::CorrId]) -> String {
    corrs
        .iter()
        .take(3)
        .map(|c| format!("{c:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The checker: knows which processes to watch and which workload-level
/// counters to reconcile at the end.
pub struct Checker {
    /// Processes spawned by the scenario, in slot order.
    pub watched: Vec<ProcessId>,
    /// The workload mix (for final counter reconciliation).
    pub workloads: Vec<Workload>,
    /// User messages posted per slot by burst events (delivery target for
    /// cargo counters).
    pub bursts_posted: Vec<u64>,
    /// Recovery-aware mode: permanent crashes with checkpoint re-homing
    /// are in play, which legalizes states the classic invariants forbid.
    /// A watched process may be *gone* while its machine is dead and its
    /// re-home pending (though never at quiescence), messages addressed
    /// into the crash may bounce non-deliverable or be lost outright, and
    /// restore-from-checkpoint rolls workload counters back (so final
    /// counters become `≤` rather than `==`). Duplicate delivery and
    /// process multiplication remain strictly forbidden — recovery must
    /// never manufacture a second live copy.
    pub recovery: bool,
}

impl Checker {
    /// A checker watching `watched` (slot order) for `workloads`.
    pub fn new(watched: Vec<ProcessId>, workloads: Vec<Workload>) -> Checker {
        let slots = watched.len();
        Checker {
            watched,
            workloads,
            bursts_posted: vec![0; slots],
            recovery: false,
        }
    }

    /// Switch the checker into (or out of) recovery-aware mode.
    pub fn with_recovery(mut self, on: bool) -> Checker {
        self.recovery = on;
        self
    }

    /// Invariants that must hold at every quantum boundary. Returns the
    /// first violation found.
    pub fn continuous(&self, c: &Cluster) -> Option<Violation> {
        self.check_chains(c)
            .or_else(|| self.check_conservation(c, false))
            .or_else(|| check_transport(c))
            .or_else(|| {
                // Messages addressed into a permanent crash may bounce;
                // with recovery in play that is the expected fate of
                // traffic racing the re-home, not a broken kernel.
                if self.recovery {
                    None
                } else {
                    check_nondeliverable(c)
                }
            })
            .or_else(|| check_duplicates(c))
    }

    /// Invariants that additionally must hold once the cluster is
    /// quiescent and all faults are lifted.
    pub fn final_check(&self, c: &Cluster) -> Option<Violation> {
        if let Some(v) = self.continuous(c) {
            return Some(v);
        }
        if !c.transport_quiescent() {
            return Some(Violation::NotQuiescent {
                in_flight: c.net().in_flight(),
            });
        }
        self.check_conservation(c, true)
            .or_else(|| {
                // Messages that died with a crashed machine (or bounced
                // off one) are legitimately undelivered under recovery.
                if self.recovery {
                    None
                } else {
                    check_loss(c)
                }
            })
            .or_else(|| self.check_links(c))
            .or_else(|| self.check_workloads(c))
    }

    /// Forwarding chains: from every live machine, the walk for every
    /// watched process must terminate without revisiting a machine. A
    /// chain longer than the machine count can only mean a revisit.
    fn check_chains(&self, c: &Cluster) -> Option<Violation> {
        let n = c.len();
        for &pid in &self.watched {
            for m in 0..n as u16 {
                let m = MachineId(m);
                if c.is_crashed(m) {
                    continue;
                }
                let chain = c.forwarding_chain(m, pid);
                if chain.len() > n {
                    return Some(Violation::ForwardingCycle {
                        pid,
                        chain: chain.iter().map(|x| x.0).collect(),
                    });
                }
            }
        }
        None
    }

    /// Process-state conservation. Mid-migration the image legitimately
    /// exists on two machines (source until cleanup, destination from
    /// install), so two copies are tolerated while any migration engine
    /// has state in flight; `strict` (quiescence) demands exactly one.
    ///
    /// In recovery mode a watched process may be absent *mid-run* while
    /// some machine is down — it died with the crash and its re-home
    /// waits on the failure detector. At quiescence (`strict`) the
    /// tolerance ends: the process must be back, which is exactly how the
    /// recovery-disabled ablation is caught. Multiplication is never
    /// tolerated — a re-home that duplicates a live process is a bug in
    /// any mode.
    fn check_conservation(&self, c: &Cluster, strict: bool) -> Option<Violation> {
        let migrations_in_flight: usize = (0..c.len() as u16)
            .filter(|&m| !c.is_crashed(MachineId(m)))
            .map(|m| c.node(MachineId(m)).engine.in_flight())
            .sum();
        let any_crashed = (0..c.len() as u16).any(|m| c.is_crashed(MachineId(m)));
        for &pid in &self.watched {
            let count = (0..c.len() as u16)
                .filter(|&m| {
                    !c.is_crashed(MachineId(m))
                        && c.node(MachineId(m)).kernel.process(pid).is_some()
                })
                .count();
            if count == 0 {
                if self.recovery && !strict && any_crashed {
                    continue; // crashed away; re-home pending
                }
                return Some(Violation::ProcessVanished { pid });
            }
            if count > 2 || (count == 2 && (strict || migrations_in_flight == 0)) {
                return Some(Violation::ProcessMultiplied { pid, count });
            }
        }
        None
    }

    /// Link convergence at quiescence: every live link addressing a
    /// watched process must chain-reach (via forwarding addresses) the
    /// machine actually hosting it. Lazy link updating means hints may be
    /// stale — §5 only patches links whose traffic got forwarded — but a
    /// stale hint must still *resolve*.
    fn check_links(&self, c: &Cluster) -> Option<Violation> {
        for m in 0..c.len() as u16 {
            let m = MachineId(m);
            if c.is_crashed(m) {
                continue;
            }
            let kernel = &c.node(m).kernel;
            let pids: Vec<ProcessId> = kernel.pids().collect();
            for holder in pids {
                let proc_ = kernel.process(holder)?;
                for (_idx, link) in proc_.links.iter() {
                    if link.attrs.contains(LinkAttrs::DEAD) {
                        continue;
                    }
                    let target = link.target();
                    if !self.watched.contains(&target) {
                        continue;
                    }
                    let hint = link.addr.last_known_machine;
                    if c.is_crashed(hint) {
                        continue; // hint died; nothing to walk
                    }
                    let chain = c.forwarding_chain(hint, target);
                    let end = *chain.last().expect("chain has the start");
                    if c.node(end).kernel.process(target).is_none() {
                        return Some(Violation::LinkDiverged {
                            machine: m.0,
                            pid: target,
                            hint: hint.0,
                        });
                    }
                }
            }
        }
        None
    }

    /// Workload-level exactly-once counters at quiescence: ping-pong
    /// rally counts within one of each other, cargo received exactly the
    /// bursts posted with ballast intact, clients got every reply.
    ///
    /// Recovery mode weakens equalities to `≤`: restoring a checkpoint
    /// rolls a counter back to the snapshot instant, and messages that
    /// died with the crash are never re-driven. Overshoot and corruption
    /// stay fatal — rollback can only *lower* a counter, so anything
    /// above the posted/sent totals still means duplicated delivery.
    fn check_workloads(&self, c: &Cluster) -> Option<Violation> {
        let state_of = |pid: ProcessId| -> Option<Vec<u8>> {
            let m = c.where_is(pid)?;
            Some(c.node(m).kernel.process(pid)?.program.as_ref()?.save())
        };
        // Counter relaxations apply only when a rollback could actually
        // have happened: recovery mode *and* a machine really died — it
        // is still down, or a recovery episode re-homed its processes
        // (the machine may have rebooted since, erasing the crash flag).
        // A recovery run whose crashes were all guarded out must satisfy
        // the classic exactly-once equalities.
        let rollback = self.recovery
            && ((0..c.len() as u16).any(|i| c.is_crashed(MachineId(i)))
                || c.recovery().is_some_and(|r| !r.episodes().is_empty()));
        let mut slot = 0usize;
        for w in &self.workloads {
            match *w {
                Workload::PingPong { limit, .. } => {
                    let (pa, pb) = (self.watched[slot], self.watched[slot + 1]);
                    let ra = pingpong_rallies(&state_of(pa)?);
                    let rb = pingpong_rallies(&state_of(pb)?);
                    // A re-homed peer's count rolled back to its last
                    // checkpoint, so lock-step divergence cannot be
                    // demanded after a real crash.
                    if !rollback && ra.abs_diff(rb) > 1 {
                        return Some(Violation::WorkloadInvariant {
                            detail: format!(
                                "pingpong rallies diverged: {ra} vs {rb} (limit {limit})"
                            ),
                        });
                    }
                    if ra.max(rb) > limit {
                        return Some(Violation::WorkloadInvariant {
                            detail: format!("pingpong overshot limit {limit}: {ra}/{rb}"),
                        });
                    }
                    slot += 2;
                }
                Workload::Cargo { ballast, .. } => {
                    let pid = self.watched[slot];
                    let state = state_of(pid)?;
                    let got = cargo_received(&state);
                    let posted = self.bursts_posted[slot];
                    if if rollback {
                        got > posted
                    } else {
                        got != posted
                    } {
                        return Some(Violation::WorkloadInvariant {
                            detail: format!("cargo received {got} of {posted} posted messages"),
                        });
                    }
                    if state.len() != 8 + ballast as usize {
                        return Some(Violation::WorkloadInvariant {
                            detail: format!(
                                "cargo ballast corrupted: {} bytes, expected {}",
                                state.len(),
                                8 + ballast as usize
                            ),
                        });
                    }
                    slot += 1;
                }
                Workload::ClientServer { .. } => {
                    let client = self.watched[slot + 1];
                    let s = client_stats(&state_of(client)?);
                    // After a rollback the client's own counters may have
                    // rewound while replies to pre-rollback requests were
                    // still in flight, so `recv` can land on either side
                    // of `sent`; no sound comparison remains. Duplicate
                    // *delivery* is still caught by the trace ledger.
                    if !rollback && s.recv != s.sent {
                        return Some(Violation::WorkloadInvariant {
                            detail: format!("client got {} replies to {} requests", s.recv, s.sent),
                        });
                    }
                    slot += 2;
                }
            }
        }
        None
    }
}

/// Transport-counter sanity, cluster-wide.
fn check_transport(c: &Cluster) -> Option<Violation> {
    let s = c.net().stats();
    let in_flight = c.net().in_flight() as u64;
    if s.frames_sent != s.frames_delivered + s.frames_dropped + in_flight {
        return Some(Violation::TransportCounters {
            detail: format!(
                "conservation: sent {} != delivered {} + dropped {} + in-flight {}",
                s.frames_sent, s.frames_delivered, s.frames_dropped, in_flight
            ),
        });
    }
    if s.data_frames + s.ack_frames != s.frames_sent {
        return Some(Violation::TransportCounters {
            detail: format!(
                "class split: data {} + ack {} != sent {}",
                s.data_frames, s.ack_frames, s.frames_sent
            ),
        });
    }
    if s.retransmit_frames > s.data_frames {
        return Some(Violation::TransportCounters {
            detail: format!(
                "retransmits {} exceed data frames {}",
                s.retransmit_frames, s.data_frames
            ),
        });
    }
    // Only retransmission manufactures duplicates: each dedup drop needs
    // an extra physical copy of some frame, and extra copies only come
    // from the sender's retransmit path.
    if s.dedup_drops > s.retransmit_frames {
        return Some(Violation::TransportCounters {
            detail: format!(
                "dedup drops {} exceed retransmitted frames {}",
                s.dedup_drops, s.retransmit_frames
            ),
        });
    }
    None
}

/// No message may bounce non-deliverable: every watched process exists
/// for the whole run, and crash events are guarded to machines nothing
/// is addressed to.
fn check_nondeliverable(c: &Cluster) -> Option<Violation> {
    let count: u64 = (0..c.len() as u16)
        .filter(|&m| !c.is_crashed(MachineId(m)))
        .map(|m| c.node(MachineId(m)).kernel.stats().nondeliverable)
        .sum();
    (count > 0).then_some(Violation::NonDeliverable { count })
}

/// Duplicate-delivery check over the trace so far.
fn check_duplicates(c: &Cluster) -> Option<Violation> {
    let dupes = ledger_of(c.trace()).duplicates();
    (!dupes.is_empty()).then(|| Violation::Duplicated {
        count: dupes.len(),
        sample: sample_corrs(&dupes),
    })
}

/// Loss check (quiescence only — in-flight messages are legitimately
/// undelivered mid-run).
fn check_loss(c: &Cluster) -> Option<Violation> {
    let lost = ledger_of(c.trace()).undelivered();
    (!lost.is_empty()).then(|| Violation::Lost {
        count: lost.len(),
        sample: sample_corrs(&lost),
    })
}
