//! Minimal-repro emission.
//!
//! When a shrunk scenario survives, the harness writes four artifacts:
//! the scenario in its stable text form (drop it into `tests/corpus/` to
//! pin the regression forever), a self-contained Rust test snippet that
//! replays it, the JSON-lines trace of the violating run, and the
//! flight-recorder dump (every machine's black box — query it with
//! `demos-trace`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::exec::RunConfig;
use crate::invariants::Violation;
use crate::scenario::Scenario;

/// Render a self-contained `#[test]` that replays the scenario and
/// asserts the invariants hold — paste it into the test tree as-is.
pub fn rust_snippet(sc: &Scenario, cfg: &RunConfig, violation: &Violation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "/// Minimized chaos repro (seed {}): {}.\n",
        sc.seed, violation
    ));
    out.push_str("#[test]\n");
    out.push_str(&format!("fn chaos_repro_seed_{}() {{\n", sc.seed));
    out.push_str("    let scenario = demos_chaos::Scenario::parse(\n");
    out.push_str("        r#\"");
    out.push_str(&sc.to_text());
    out.push_str("\"#,\n    )\n    .unwrap();\n");
    out.push_str(&format!(
        "    let cfg = demos_chaos::RunConfig {{ disable_forwarding: {}, disable_recovery: {}, ..Default::default() }};\n",
        cfg.disable_forwarding, cfg.disable_recovery
    ));
    out.push_str("    let report = demos_chaos::run(&scenario, &cfg);\n");
    out.push_str(
        "    assert!(report.passed(), \"invariant violated: {}\", report.violation.unwrap());\n",
    );
    out.push_str("}\n");
    out
}

/// Artifact paths written by [`write_artifacts`].
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// The scenario text (corpus-ready).
    pub scenario: PathBuf,
    /// The Rust test snippet.
    pub snippet: PathBuf,
    /// The JSON-lines trace of the violating run.
    pub trace: PathBuf,
    /// The flight-recorder dump (binary; `demos-trace` reads it).
    pub flight: PathBuf,
}

/// Write the repro artifacts for `sc` into `dir` (created if missing).
///
/// Artifacts are named `repro-<seed>.*`. Two different violations can
/// share a seed — the same scenario under different ablation flags, or
/// two mutants that kept the base's seed field — so an existing
/// `repro-<seed>.seed` holding *different* scenario text is never
/// silently overwritten: the new artifacts get a `-<violation-slug>`
/// suffix (then `-2`, `-3`, … if that base is taken too). Re-writing
/// identical scenario text reuses the name — replaying a known repro is
/// idempotent.
pub fn write_artifacts(
    dir: &Path,
    sc: &Scenario,
    cfg: &RunConfig,
    violation: &Violation,
    trace_lines: &str,
    flight_dump: &[u8],
) -> std::io::Result<Artifacts> {
    std::fs::create_dir_all(dir)?;
    let base = pick_base(dir, sc, violation);
    let paths = Artifacts {
        scenario: dir.join(format!("{base}.seed")),
        snippet: dir.join(format!("{base}.rs")),
        trace: dir.join(format!("{base}.jsonl")),
        flight: dir.join(format!("{base}.flight")),
    };
    std::fs::File::create(&paths.scenario)?.write_all(sc.to_text().as_bytes())?;
    std::fs::File::create(&paths.snippet)?
        .write_all(rust_snippet(sc, cfg, violation).as_bytes())?;
    std::fs::File::create(&paths.trace)?.write_all(trace_lines.as_bytes())?;
    std::fs::File::create(&paths.flight)?.write_all(flight_dump)?;
    Ok(paths)
}

/// First free artifact base name for this (scenario, violation): the
/// plain `repro-<seed>` when it is unused or already holds this exact
/// scenario text, else suffixed by the violation slug, else numbered.
fn pick_base(dir: &Path, sc: &Scenario, violation: &Violation) -> String {
    let text = sc.to_text();
    let available = |base: &str| {
        let existing = dir.join(format!("{base}.seed"));
        match std::fs::read_to_string(&existing) {
            Ok(held) => held == text,
            Err(_) => !existing.exists(),
        }
    };
    let plain = format!("repro-{}", sc.seed);
    if available(&plain) {
        return plain;
    }
    let slugged = format!("{plain}-{}", violation.slug());
    if available(&slugged) {
        return slugged;
    }
    let mut i = 2u32;
    loop {
        let numbered = format!("{slugged}-{i}");
        if available(&numbered) {
            return numbered;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_embeds_parseable_scenario() {
        let sc = Scenario::generate(11);
        let snippet = rust_snippet(
            &sc,
            &RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
            &Violation::NonDeliverable { count: 1 },
        );
        assert!(snippet.contains("#[test]"));
        assert!(snippet.contains("disable_forwarding: true"));
        // The embedded text must round-trip through the parser.
        let start = snippet.find("demos-chaos v1").unwrap();
        let end = snippet.find("\"#").unwrap();
        let embedded = &snippet[start..end];
        assert_eq!(Scenario::parse(embedded).unwrap(), sc);
    }

    #[test]
    fn artifacts_are_written() {
        let dir = std::env::temp_dir().join("demos-chaos-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let sc = Scenario::generate(13);
        let paths = write_artifacts(
            &dir,
            &sc,
            &RunConfig::default(),
            &Violation::NonDeliverable { count: 2 },
            "{\"at\":0}\n",
            b"DMFR1\0\0\0",
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&paths.scenario).unwrap(),
            sc.to_text()
        );
        assert!(std::fs::read_to_string(&paths.snippet)
            .unwrap()
            .contains("chaos_repro_seed_13"));
        assert_eq!(std::fs::read(&paths.flight).unwrap(), b"DMFR1\0\0\0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_variant_same_seed_never_overwrites() {
        let dir = std::env::temp_dir().join("demos-chaos-test-artifact-collisions");
        let _ = std::fs::remove_dir_all(&dir);
        let sc = Scenario::generate(21);
        let mut other = sc.clone();
        other.quantum_us += 1; // same seed field, different scenario
        let cfg = RunConfig::default();

        let first = write_artifacts(
            &dir,
            &sc,
            &cfg,
            &Violation::NonDeliverable { count: 1 },
            "t1\n",
            b"F1",
        )
        .unwrap();
        // Same scenario again: idempotent, same paths, content intact.
        let again = write_artifacts(
            &dir,
            &sc,
            &cfg,
            &Violation::NonDeliverable { count: 1 },
            "t1\n",
            b"F1",
        )
        .unwrap();
        assert_eq!(first.scenario, again.scenario);

        // Different scenario text with the same seed: new slugged base,
        // first artifacts untouched.
        let second = write_artifacts(
            &dir,
            &other,
            &cfg,
            &Violation::NotQuiescent { in_flight: 3 },
            "t2\n",
            b"F2",
        )
        .unwrap();
        assert_ne!(first.scenario, second.scenario);
        assert!(second
            .scenario
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("notquiescent"));
        assert_eq!(std::fs::read(&first.flight).unwrap(), b"F1");
        assert_eq!(std::fs::read(&second.flight).unwrap(), b"F2");

        // A third distinct scenario under the same seed and slug gets a
        // numbered base.
        let mut third_sc = sc.clone();
        third_sc.quantum_us += 2;
        let third = write_artifacts(
            &dir,
            &third_sc,
            &cfg,
            &Violation::NotQuiescent { in_flight: 9 },
            "t3\n",
            b"F3",
        )
        .unwrap();
        assert!(third
            .scenario
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("notquiescent-2"));
        assert_eq!(std::fs::read(&second.flight).unwrap(), b"F2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
