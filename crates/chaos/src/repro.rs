//! Minimal-repro emission.
//!
//! When a shrunk scenario survives, the harness writes four artifacts:
//! the scenario in its stable text form (drop it into `tests/corpus/` to
//! pin the regression forever), a self-contained Rust test snippet that
//! replays it, the JSON-lines trace of the violating run, and the
//! flight-recorder dump (every machine's black box — query it with
//! `demos-trace`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::exec::RunConfig;
use crate::invariants::Violation;
use crate::scenario::Scenario;

/// Render a self-contained `#[test]` that replays the scenario and
/// asserts the invariants hold — paste it into the test tree as-is.
pub fn rust_snippet(sc: &Scenario, cfg: &RunConfig, violation: &Violation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "/// Minimized chaos repro (seed {}): {}.\n",
        sc.seed, violation
    ));
    out.push_str("#[test]\n");
    out.push_str(&format!("fn chaos_repro_seed_{}() {{\n", sc.seed));
    out.push_str("    let scenario = demos_chaos::Scenario::parse(\n");
    out.push_str("        r#\"");
    out.push_str(&sc.to_text());
    out.push_str("\"#,\n    )\n    .unwrap();\n");
    out.push_str(&format!(
        "    let cfg = demos_chaos::RunConfig {{ disable_forwarding: {}, disable_recovery: {} }};\n",
        cfg.disable_forwarding, cfg.disable_recovery
    ));
    out.push_str("    let report = demos_chaos::run(&scenario, &cfg);\n");
    out.push_str(
        "    assert!(report.passed(), \"invariant violated: {}\", report.violation.unwrap());\n",
    );
    out.push_str("}\n");
    out
}

/// Artifact paths written by [`write_artifacts`].
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// The scenario text (corpus-ready).
    pub scenario: PathBuf,
    /// The Rust test snippet.
    pub snippet: PathBuf,
    /// The JSON-lines trace of the violating run.
    pub trace: PathBuf,
    /// The flight-recorder dump (binary; `demos-trace` reads it).
    pub flight: PathBuf,
}

/// Write the repro artifacts for `sc` into `dir` (created if missing).
pub fn write_artifacts(
    dir: &Path,
    sc: &Scenario,
    cfg: &RunConfig,
    violation: &Violation,
    trace_lines: &str,
    flight_dump: &[u8],
) -> std::io::Result<Artifacts> {
    std::fs::create_dir_all(dir)?;
    let base = format!("repro-{}", sc.seed);
    let paths = Artifacts {
        scenario: dir.join(format!("{base}.seed")),
        snippet: dir.join(format!("{base}.rs")),
        trace: dir.join(format!("{base}.jsonl")),
        flight: dir.join(format!("{base}.flight")),
    };
    std::fs::File::create(&paths.scenario)?.write_all(sc.to_text().as_bytes())?;
    std::fs::File::create(&paths.snippet)?
        .write_all(rust_snippet(sc, cfg, violation).as_bytes())?;
    std::fs::File::create(&paths.trace)?.write_all(trace_lines.as_bytes())?;
    std::fs::File::create(&paths.flight)?.write_all(flight_dump)?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_embeds_parseable_scenario() {
        let sc = Scenario::generate(11);
        let snippet = rust_snippet(
            &sc,
            &RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
            &Violation::NonDeliverable { count: 1 },
        );
        assert!(snippet.contains("#[test]"));
        assert!(snippet.contains("disable_forwarding: true"));
        // The embedded text must round-trip through the parser.
        let start = snippet.find("demos-chaos v1").unwrap();
        let end = snippet.find("\"#").unwrap();
        let embedded = &snippet[start..end];
        assert_eq!(Scenario::parse(embedded).unwrap(), sc);
    }

    #[test]
    fn artifacts_are_written() {
        let dir = std::env::temp_dir().join("demos-chaos-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let sc = Scenario::generate(13);
        let paths = write_artifacts(
            &dir,
            &sc,
            &RunConfig::default(),
            &Violation::NonDeliverable { count: 2 },
            "{\"at\":0}\n",
            b"DMFR1\0\0\0",
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&paths.scenario).unwrap(),
            sc.to_text()
        );
        assert!(std::fs::read_to_string(&paths.snippet)
            .unwrap()
            .contains("chaos_repro_seed_13"));
        assert_eq!(std::fs::read(&paths.flight).unwrap(), b"DMFR1\0\0\0");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
