//! The schedule executor: scenario in, verdict out.
//!
//! Builds a cluster from the scenario, spawns the workload mix, then
//! interleaves the event schedule with quantum-sized simulation slices,
//! running the continuous invariant checkers between slices. After the
//! horizon every fault is lifted (edges healed, machines revived, CPUs
//! restored) and the cluster drains to quiescence, where the final
//! checks — loss, link convergence, workload counters — run.
//!
//! Event guards keep the invariants *unconditional*: in a classic
//! scenario a crash is applied only to a machine that hosts no
//! processes, holds no forwarding addresses, and has no migration in
//! flight anywhere — so no workload message can ever be addressed to a
//! machine whose state is about to vanish. A migration into a
//! currently-crashed machine is skipped for the same reason (its offer
//! would sit in a retransmit queue that a later revive resets).
//! Guarded-out events count as *skipped*, and the shrinker deletes them
//! for free.
//!
//! Recovery scenarios ([`Scenario::recovery`]) change the crash rules:
//! crashes are *permanent* and may hit populated machines. The executor
//! then runs every kernel with the heartbeat failure detector and wires
//! a [`RecoveryConfig`] into the cluster, so confirmed deaths trigger
//! checkpoint re-homing; the invariant checker switches to its
//! recovery-aware mode (a process may be gone between the crash and its
//! re-home, but must be back — exactly once — at quiescence). The
//! `disable_recovery` ablation runs the same schedule without any of
//! that machinery and must be caught as a vanished process.

use demos_core::{AcceptPolicy, MigrationConfig};
use demos_kernel::{ImageLayout, KernelConfig};
use demos_obs::features::FeatureSet;
use demos_sim::cluster::{Cluster, ClusterBuilder};
use demos_sim::programs::{wl, Cargo, Client, EchoServer, PingPong};
use demos_sim::recovery::RecoveryConfig;
use demos_sim::trace::Trace;
use demos_types::{tags, Duration, MachineId, ProcessId};

use crate::coverage::{fault_phase_features, violation_feature};
use crate::invariants::{Checker, Violation};
use crate::scenario::{EventKind, Scenario, Workload};

/// Message tag burst events post with (user range, distinct from the
/// workload protocol tags).
pub const BURST_TAG: u16 = tags::USER_BASE + 9;

/// Execution knobs orthogonal to the scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunConfig {
    /// Disable forwarding addresses (§4) in every kernel — the paper's
    /// rejected design, kept as an ablation flag. The harness is expected
    /// to catch this as a broken kernel.
    pub disable_forwarding: bool,
    /// Run a recovery scenario *without* the recovery machinery (no
    /// heartbeat detector, no checkpoints, no re-homing) — the ablation
    /// for the failure-recovery stack. Permanent crashes then orphan
    /// their processes forever, and the harness is expected to catch the
    /// vanished process. No effect on classic scenarios.
    pub disable_recovery: bool,
    /// Worker threads for the sharded event-loop executor. `0` and `1`
    /// both mean the sequential loop. Verdicts, fingerprints, traces and
    /// recorder dumps are identical for every value — the shard-equality
    /// suite replays the whole corpus to pin that.
    pub shards: usize,
    /// Zero out the scenario's link-loss probability. Lossy links force
    /// the sharded executor onto its sequential fallback (the loss RNG
    /// is global), so campaigns that want genuine parallel coverage —
    /// e.g. the ThreadSanitizer CI job — strip loss with this flag.
    pub lossless: bool,
}

/// Outcome of one scenario execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
    /// Deterministic fingerprint of the full event trace.
    pub fingerprint: u64,
    /// Virtual time when the run ended, microseconds.
    pub end_us: u64,
    /// Schedule events actually applied.
    pub events_applied: usize,
    /// Schedule events skipped by safety guards.
    pub events_skipped: usize,
    /// Parallel segments the sharded executor ran (0 = every run took
    /// the sequential path — shards = 1 or an unsupported
    /// configuration). Lets the equality suite prove the parallel path
    /// was genuinely exercised rather than silently falling back.
    pub parallel_segments: u64,
}

impl RunReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// Heartbeat cadence the executor runs recovery scenarios with.
const HB_EVERY: Duration = Duration::from_millis(5);
/// Checkpoint cadence for recovery scenarios.
const CK_EVERY: Duration = Duration::from_millis(5);

/// A finished execution with the cluster still alive: the report plus
/// everything derived artifacts need (trace export, flight dump,
/// coverage extraction, applied-fault log).
pub(crate) struct Executed {
    /// The verdict.
    pub report: RunReport,
    /// The cluster at the end of the run, trace and recorder intact.
    pub cluster: Cluster,
    /// Events actually applied, with the virtual time each landed at —
    /// the context `fault × phase` coverage needs.
    pub faults: Vec<(u64, EventKind)>,
}

/// Execute `sc` and return the report, the JSON-lines trace export, and
/// the flight-recorder dump (every machine's black box, readable by
/// `demos-trace`). The dump is the post-mortem artifact: unlike the full
/// trace it is bounded, so it stays useful on schedules long enough to
/// make the trace export unwieldy.
pub fn run_capture(sc: &Scenario, cfg: &RunConfig) -> (RunReport, String, Vec<u8>) {
    let done = execute(sc, cfg);
    let lines = trace_json_lines(done.cluster.trace());
    let flight = done.cluster.recorder_dump();
    (done.report, lines, flight)
}

/// Execute `sc` and return the report plus the run's schedule-coverage
/// feature set: trace-derived classes and recovery-episode overlap (from
/// `demos-sim`), `fault × phase` pairs (from the applied-fault log), and
/// the violation variant if the run failed. This is the fuzzer's
/// feedback path.
pub fn run_with_coverage(sc: &Scenario, cfg: &RunConfig) -> (RunReport, FeatureSet) {
    let done = execute(sc, cfg);
    let mut set = demos_sim::coverage_of(&done.cluster);
    fault_phase_features(done.cluster.trace().records(), &done.faults, &mut set);
    if let Some(v) = &done.report.violation {
        set.insert(violation_feature(v));
    }
    (done.report, set)
}

pub(crate) fn execute(sc: &Scenario, cfg: &RunConfig) -> Executed {
    // Recovery machinery is active only when the scenario asks for it and
    // the ablation flag doesn't veto it.
    let recovery = sc.recovery && !cfg.disable_recovery;
    let kcfg = KernelConfig {
        forwarding: !cfg.disable_forwarding,
        // Dead after 120 ms of silence — far beyond any generated
        // partition window (≤ ~9 ms), so a partitioned peer is at worst
        // suspected, never falsely confirmed dead.
        heartbeat_every: if recovery { HB_EVERY } else { Duration::ZERO },
        suspect_after: 4,
        dead_after: 24,
        ..KernelConfig::default()
    };
    let mut topo_spec = sc.topo;
    if cfg.lossless {
        topo_spec.loss_pm = 0;
    }
    let mut builder = ClusterBuilder::new(sc.topo.n as usize)
        .topology(topo_spec.build())
        .seed(sc.seed)
        .shards(cfg.shards.max(1))
        .kernel_config(kcfg)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Always,
            // Far beyond any partition window (all heal by the horizon),
            // but short of the drain budget, so a migration stalled by a
            // guarded-out edge case still aborts and thaws in time.
            timeout: Duration::from_secs(10),
            ..MigrationConfig::default()
        });
    if recovery {
        builder = builder.recovery(RecoveryConfig {
            checkpoint_every: CK_EVERY,
            protect_all: true,
        });
    }
    let mut c = builder.build();

    let procs = spawn_workloads(&mut c, &sc.workloads);
    let mut checker = Checker::new(procs.clone(), sc.workloads.clone()).with_recovery(recovery);
    let quantum = Duration::from_micros(sc.quantum_us.max(1));

    let mut events = sc.events.clone();
    events.sort_by_key(|e| e.at_us);

    let mut violation = None;
    let mut faults: Vec<(u64, EventKind)> = Vec::new();
    let mut skipped = 0usize;
    for e in &events {
        violation = advance(&mut c, &checker, e.at_us, quantum);
        if violation.is_some() {
            break;
        }
        if apply_event(&mut c, &mut checker, &procs, e.kind, sc.recovery, recovery) {
            faults.push((c.now().as_micros(), e.kind));
        } else {
            skipped += 1;
        }
    }
    if violation.is_none() {
        violation = advance(&mut c, &checker, sc.horizon_us, quantum);
    }
    if violation.is_none() {
        // Lift every transient fault. Classic scenarios also revive
        // crashed machines; recovery scenarios leave them dead — that is
        // the point — and wait for detection plus re-homing to settle.
        c.heal_all();
        for m in 0..sc.topo.n {
            let m = MachineId(m);
            if c.is_crashed(m) {
                if !sc.recovery {
                    c.revive(m);
                }
            } else {
                c.degrade(m, 1.0);
            }
        }
        if recovery {
            violation = settle_recovery(&mut c, &checker, sc, quantum);
            // The detector never lets the transport go idle (beats fly
            // forever); stop it so the drain below reaches quiescence.
            c.stop_heartbeats();
        }
    }
    if violation.is_none() {
        let deadline = c.now().as_micros() + sc.drain_us;
        violation = advance(&mut c, &checker, deadline, quantum);
    }
    if violation.is_none() {
        violation = checker.final_check(&c);
    }

    let report = RunReport {
        violation,
        fingerprint: c.trace().fingerprint(),
        end_us: c.now().as_micros(),
        events_applied: faults.len(),
        events_skipped: skipped,
        parallel_segments: c.parallel_segments(),
    };
    Executed {
        report,
        cluster: c,
        faults,
    }
}

/// Execute `sc` and return the report plus the JSON-lines trace export.
pub fn run_full(sc: &Scenario, cfg: &RunConfig) -> (RunReport, String) {
    let (report, lines, _) = run_capture(sc, cfg);
    (report, lines)
}

/// Execute `sc`, discarding the trace export.
pub fn run(sc: &Scenario, cfg: &RunConfig) -> RunReport {
    run_full(sc, cfg).0
}

/// Post-horizon settle phase for recovery scenarios: keep the cluster
/// (and its still-running detector) stepping until every permanently
/// crashed machine has a completed recovery episode, bounded by a budget
/// comfortably past the detector's dead window. If detection or
/// re-homing never happens, the final conservation check reports the
/// vanished process — this phase only gives it the time it is owed.
fn settle_recovery(
    c: &mut Cluster,
    checker: &Checker,
    sc: &Scenario,
    quantum: Duration,
) -> Option<Violation> {
    let crashed: Vec<MachineId> = (0..sc.topo.n)
        .map(MachineId)
        .filter(|&m| c.is_crashed(m))
        .collect();
    let budget_us = c.now().as_micros() + 1_000_000;
    while c.now().as_micros() < budget_us {
        // Settled = the re-home happened AND every live machine's own
        // failure detector has confirmed every casualty dead. The second
        // half matters: confirmation purges the survivor's channel to
        // the corpse, and the executor stops heartbeats right after this
        // loop — settling on the *first* verdict would freeze the other
        // detectors mid-decision and leave their channels retransmitting
        // at a dead machine forever (found by the guided fuzzer as a
        // failure to drain).
        let settled = crashed.iter().all(|&m| {
            c.recovery()
                .is_some_and(|r| r.episodes().iter().any(|e| e.machine == m))
                && (0..sc.topo.n)
                    .map(MachineId)
                    .filter(|&o| o != m && !c.is_crashed(o))
                    .all(|o| c.node(o).kernel.peer_dead(m))
        });
        if settled {
            return None;
        }
        let t = (c.now().as_micros() + 10_000).min(budget_us);
        let v = advance(c, checker, t, quantum);
        if v.is_some() {
            return v;
        }
    }
    None
}

/// Advance the cluster to virtual time `until_us`, checking continuous
/// invariants every `quantum`. Returns the first violation.
fn advance(
    c: &mut Cluster,
    checker: &Checker,
    until_us: u64,
    quantum: Duration,
) -> Option<Violation> {
    let now_us = c.now().as_micros();
    if until_us <= now_us {
        return checker.continuous(c);
    }
    let mut v = None;
    c.run_with_quantum(Duration::from_micros(until_us - now_us), quantum, |cl| {
        v = checker.continuous(cl);
        v.is_none()
    });
    v
}

/// Spawn the workload mix; returns the processes in slot order.
fn spawn_workloads(c: &mut Cluster, workloads: &[Workload]) -> Vec<ProcessId> {
    let mut procs = Vec::new();
    for w in workloads {
        match *w {
            Workload::PingPong {
                a,
                b,
                limit,
                cpu_us,
            } => {
                let st = PingPong::state(limit, cpu_us);
                let pa = c
                    .spawn(MachineId(a), "pingpong", &st, ImageLayout::default())
                    .expect("spawn pingpong");
                let pb = c
                    .spawn(MachineId(b), "pingpong", &st, ImageLayout::default())
                    .expect("spawn pingpong");
                let la = c.link_to(pa).expect("link");
                let lb = c.link_to(pb).expect("link");
                c.post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
                    .expect("init");
                c.post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
                    .expect("init");
                procs.push(pa);
                procs.push(pb);
            }
            Workload::Cargo { m, ballast } => {
                let pid = c
                    .spawn(
                        MachineId(m),
                        "cargo",
                        &Cargo::state(ballast as usize),
                        ImageLayout::default(),
                    )
                    .expect("spawn cargo");
                procs.push(pid);
            }
            Workload::ClientServer {
                client,
                server,
                requests,
                period_us,
                payload,
            } => {
                let ps = c
                    .spawn(
                        MachineId(server),
                        "echo_server",
                        &EchoServer::state(20),
                        ImageLayout::default(),
                    )
                    .expect("spawn server");
                let pc = c
                    .spawn(
                        MachineId(client),
                        "client",
                        &Client::state(requests, period_us, payload),
                        ImageLayout::default(),
                    )
                    .expect("spawn client");
                let ls = c.link_to(ps).expect("link");
                c.post(pc, wl::INIT, bytes::Bytes::new(), vec![ls])
                    .expect("init");
                procs.push(ps);
                procs.push(pc);
            }
        }
    }
    procs
}

/// Apply one schedule event, enforcing the safety guards. Returns whether
/// the event was actually applied.
///
/// `scenario_recovery` is the scenario's flag (crashes are permanent and
/// may hit populated machines); `active_recovery` says the recovery
/// machinery is actually running (not ablated) — with it active, a crash
/// additionally waits until stable storage holds a checkpoint for every
/// resident process, mirroring an operator who only decommissions a
/// machine the checkpointer has covered.
fn apply_event(
    c: &mut Cluster,
    checker: &mut Checker,
    procs: &[ProcessId],
    kind: EventKind,
    scenario_recovery: bool,
    active_recovery: bool,
) -> bool {
    match kind {
        EventKind::Migrate { slot, to } => {
            let pid = procs[slot as usize];
            let to = MachineId(to);
            if c.is_crashed(to) || c.where_is(pid) == Some(to) {
                return false;
            }
            c.migrate(pid, to).is_ok()
        }
        EventKind::Burst {
            slot,
            count,
            payload,
        } => {
            let pid = procs[slot as usize];
            let body = bytes::Bytes::from(vec![0u8; payload as usize]);
            let mut any = false;
            for _ in 0..count {
                if c.post(pid, BURST_TAG, body.clone(), vec![]).is_ok() {
                    checker.bursts_posted[slot as usize] += 1;
                    any = true;
                }
            }
            any
        }
        EventKind::Partition { a, b } => c.partition(MachineId(a), MachineId(b)),
        EventKind::HealEdge { a, b } => c.heal(MachineId(a), MachineId(b)),
        EventKind::Crash { m } => {
            let m = MachineId(m);
            if c.is_crashed(m) {
                return false;
            }
            if scenario_recovery {
                // Permanent crash. Keep at least two live survivors so
                // re-homing has a target and traffic still flows.
                let live_after = (0..c.len() as u16)
                    .filter(|&i| i != m.0 && !c.is_crashed(MachineId(i)))
                    .count();
                if live_after < 2 {
                    return false;
                }
                if active_recovery {
                    let pids: Vec<ProcessId> = c.node(m).kernel.pids().collect();
                    let all_checkpointed = pids
                        .iter()
                        .all(|&p| c.recovery().is_some_and(|r| r.checkpoint_of(p).is_some()));
                    if !all_checkpointed {
                        return false;
                    }
                }
                c.crash(m);
                true
            } else {
                let kernel = &c.node(m).kernel;
                let empty = kernel.nprocs() == 0 && kernel.forwarding_table().is_empty();
                let engines_idle = (0..c.len() as u16)
                    .filter(|&i| !c.is_crashed(MachineId(i)))
                    .all(|i| c.node(MachineId(i)).engine.in_flight() == 0);
                if empty && engines_idle {
                    c.crash(m);
                    true
                } else {
                    false
                }
            }
        }
        EventKind::Revive { m } => {
            let m = MachineId(m);
            if c.is_crashed(m) {
                c.revive(m);
                true
            } else {
                false
            }
        }
        EventKind::Degrade { m, factor_pct } => {
            let m = MachineId(m);
            if c.is_crashed(m) {
                return false;
            }
            c.degrade(m, factor_pct as f64 / 100.0);
            true
        }
        EventKind::Restore { m } => {
            let m = MachineId(m);
            if c.is_crashed(m) {
                return false;
            }
            c.degrade(m, 1.0);
            true
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export the trace as JSON lines: one object per record, in order. Two
/// runs of the same scenario must produce byte-identical output (the
/// determinism test pins this).
pub fn trace_json_lines(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        out.push_str(&format!(
            "{{\"at\":{},\"machine\":{},\"event\":\"{}\"}}\n",
            r.at.as_micros(),
            r.machine.0,
            json_escape(&format!("{:?}", r.event))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn clean_seed_passes_all_invariants() {
        let sc = Scenario::generate(1);
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "seed 1 violated: {:?}",
            report.violation.map(|v| v.to_string())
        );
        assert!(report.events_applied > 0, "schedule did something");
    }

    #[test]
    fn same_seed_same_fingerprint_and_trace() {
        let sc = Scenario::generate(7);
        let (a, ta) = run_full(&sc, &RunConfig::default());
        let (b, tb) = run_full(&sc, &RunConfig::default());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(ta, tb, "byte-identical JSON-lines export");
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn forwarding_ablation_is_caught() {
        // A migration of a chattering ping-pong peer with forwarding
        // disabled bounces the next ball as non-deliverable.
        let sc = crate::scenario::Scenario {
            seed: 1,
            topo: crate::scenario::TopoSpec {
                kind: crate::scenario::TopoKind::Mesh,
                n: 3,
                latency_us: 200,
                ns_per_byte: 100,
                loss_pm: 0,
            },
            quantum_us: 2_000,
            horizon_us: 30_000,
            drain_us: 10_000_000,
            workloads: vec![crate::scenario::Workload::PingPong {
                a: 0,
                b: 1,
                limit: 100,
                cpu_us: 50,
            }],
            events: vec![crate::scenario::Event {
                at_us: 5_000,
                kind: EventKind::Migrate { slot: 1, to: 2 },
            }],
            recovery: false,
        };
        assert!(run(&sc, &RunConfig::default()).passed(), "healthy kernel");
        let report = run(
            &sc,
            &RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
        );
        assert!(report.violation.is_some(), "broken kernel must be caught");
    }

    #[test]
    fn permanent_crash_recovered_and_ablation_caught() {
        // An echo server's machine dies permanently mid-service. With
        // the recovery machinery the detector confirms the death, the
        // server is re-homed from its checkpoint, and every invariant
        // holds; with the machinery ablated the same schedule must be
        // caught as a vanished process.
        let sc = crate::scenario::Scenario {
            seed: 3,
            topo: crate::scenario::TopoSpec {
                kind: crate::scenario::TopoKind::Mesh,
                n: 3,
                latency_us: 200,
                ns_per_byte: 50,
                loss_pm: 0,
            },
            quantum_us: 2_000,
            horizon_us: 60_000,
            drain_us: 10_000_000,
            workloads: vec![crate::scenario::Workload::ClientServer {
                client: 0,
                server: 1,
                requests: 80,
                period_us: 800,
                payload: 64,
            }],
            events: vec![crate::scenario::Event {
                at_us: 20_000,
                kind: EventKind::Crash { m: 1 },
            }],
            recovery: true,
        };
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "recovered run violated: {:?}",
            report.violation.map(|v| v.to_string())
        );
        assert_eq!(report.events_applied, 1, "the crash was applied");
        let ablated = run(
            &sc,
            &RunConfig {
                disable_recovery: true,
                ..RunConfig::default()
            },
        );
        assert!(
            matches!(
                ablated.violation,
                Some(crate::invariants::Violation::ProcessVanished { .. })
            ),
            "ablation must orphan the server: {:?}",
            ablated.violation.map(|v| v.to_string())
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn coverage_is_deterministic_and_nonempty() {
        let sc = Scenario::generate(7);
        let (ra, ca) = run_with_coverage(&sc, &RunConfig::default());
        let (rb, cb) = run_with_coverage(&sc, &RunConfig::default());
        assert_eq!(ra.fingerprint, rb.fingerprint);
        assert_eq!(ca, cb, "same seed, same feature set");
        assert!(!ca.is_empty(), "a real run exhibits features");
        // A run with applied events exhibits at least one fault-phase
        // pairing.
        if ra.events_applied > 0 {
            use demos_obs::features::{class, unpack};
            assert!(
                ca.iter().any(|f| unpack(f).0 == class::FAULT_PHASE),
                "applied events produce fault-phase features"
            );
        }
    }

    #[test]
    fn violation_feature_reaches_the_set() {
        // The forwarding-ablation scenario from above, through the
        // coverage path: the violation variant must be a feature.
        let sc = crate::scenario::Scenario {
            seed: 1,
            topo: crate::scenario::TopoSpec {
                kind: crate::scenario::TopoKind::Mesh,
                n: 3,
                latency_us: 200,
                ns_per_byte: 100,
                loss_pm: 0,
            },
            quantum_us: 2_000,
            horizon_us: 30_000,
            drain_us: 10_000_000,
            workloads: vec![crate::scenario::Workload::PingPong {
                a: 0,
                b: 1,
                limit: 100,
                cpu_us: 50,
            }],
            events: vec![crate::scenario::Event {
                at_us: 5_000,
                kind: EventKind::Migrate { slot: 1, to: 2 },
            }],
            recovery: false,
        };
        let (report, cov) = run_with_coverage(
            &sc,
            &RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
        );
        let v = report.violation.expect("ablation caught");
        assert!(cov.contains(crate::coverage::violation_feature(&v)));
    }
}
