//! Mutation operators over the stable scenario form.
//!
//! Coverage-guided search doesn't draw every candidate fresh from the
//! seed generator: it *edits* scenarios that already earned their place
//! in the corpus pool. All operators work on the parsed [`Scenario`]
//! value (the same structure the text form round-trips), keep the event
//! schedule sorted, and never produce a scenario that fails
//! [`Scenario::validate`] — a mutant is always runnable.
//!
//! Operators (picked by the campaign's deterministic RNG):
//!
//! * **retime** — move one event to a fresh instant (fault *timing* is
//!   most of the search space in a phase-interleaving bug);
//! * **swap** — exchange the times of two events (reorder);
//! * **quantum jitter** — change the invariant-check cadence, which
//!   shifts every checker-visible interleaving;
//! * **reseed** — new network-loss coin flips, same schedule;
//! * **duplicate / delete / insert** — grow or shrink the schedule,
//!   inserting from the full fault alphabet;
//! * **retarget** — point a migrate at a different destination;
//! * **splice** — transplant a window of a *donor* scenario's events,
//!   remapping slots and machines into the base's ranges.

use rand::rngs::StdRng;
use rand::Rng;

use crate::scenario::{Event, EventKind, Scenario};

/// Number of distinct single-scenario operators `mutate` can pick from
/// (splice additionally needs a donor).
const OPS: u64 = 8;

/// Produce one mutant of `base`. `donor` (another pool entry) enables
/// the splice operator; without it the splice roll falls back to an
/// insert. Deterministic given the RNG state.
pub fn mutate(base: &Scenario, donor: Option<&Scenario>, rng: &mut StdRng) -> Scenario {
    let mut sc = base.clone();
    let rounds = 1 + rng.gen_range(0..3);
    for _ in 0..rounds {
        let roll = if donor.is_some() {
            rng.gen_range(0..OPS + 1)
        } else {
            rng.gen_range(0..OPS)
        };
        match roll {
            0 => retime(&mut sc, rng),
            1 => swap(&mut sc, rng),
            2 => sc.quantum_us = 1_000 + rng.gen_range(0..8_000),
            3 => sc.seed = rng.next_u64(),
            4 => duplicate(&mut sc, rng),
            5 => delete(&mut sc, rng),
            6 => insert(&mut sc, rng),
            7 => retarget(&mut sc, rng),
            _ => {
                if let Some(d) = donor {
                    splice(&mut sc, d, rng);
                }
            }
        }
    }
    finish(&mut sc);
    debug_assert!(sc.validate().is_ok(), "mutant invalid: {}", sc.to_text());
    sc
}

/// A fresh event drawn from the full fault alphabet, valid for `sc`.
/// Unpaired partitions/crashes/degrades are fine: the executor heals,
/// revives and restores everything at the horizon before the drain.
/// Recovery scenarios weight the draw toward crashes — permanent deaths
/// are the fault that regime exists to exercise, and the detector /
/// re-homing code paths are unreachable without one.
pub fn random_event(sc: &Scenario, rng: &mut StdRng) -> Event {
    let n = sc.topo.n;
    let slots = sc.total_slots().max(1);
    let at_us = event_time(sc, rng);
    let edges = sc.topo.edges();
    let roll = rng.gen_range(0..100);
    // (migrate, burst, partition, heal, crash, revive, degrade) upper
    // bounds; the remainder is restore.
    let cut: [u64; 7] = if sc.recovery {
        [25, 40, 50, 56, 80, 85, 93]
    } else {
        [30, 50, 65, 73, 83, 88, 95]
    };
    let kind = if roll < cut[0] {
        EventKind::Migrate {
            slot: rng.gen_range(0..slots as u64) as u16,
            to: rng.gen_range(0..n as u64) as u16,
        }
    } else if roll < cut[1] {
        EventKind::Burst {
            slot: rng.gen_range(0..slots as u64) as u16,
            count: 1 + rng.gen_range(0..8) as u16,
            payload: rng.gen_range(0..256) as u32,
        }
    } else if roll < cut[2] {
        let (a, b) = edges[rng.gen_range(0..edges.len() as u64) as usize];
        EventKind::Partition { a, b }
    } else if roll < cut[3] {
        let (a, b) = edges[rng.gen_range(0..edges.len() as u64) as usize];
        EventKind::HealEdge { a, b }
    } else if roll < cut[4] {
        EventKind::Crash {
            m: rng.gen_range(0..n as u64) as u16,
        }
    } else if roll < cut[5] {
        EventKind::Revive {
            m: rng.gen_range(0..n as u64) as u16,
        }
    } else if roll < cut[6] {
        EventKind::Degrade {
            m: rng.gen_range(0..n as u64) as u16,
            factor_pct: 150 + rng.gen_range(0..1_850) as u32,
        }
    } else {
        EventKind::Restore {
            m: rng.gen_range(0..n as u64) as u16,
        }
    };
    Event { at_us, kind }
}

fn event_time(sc: &Scenario, rng: &mut StdRng) -> u64 {
    let span = sc.horizon_us.saturating_sub(2_000).max(1);
    1_000 + rng.gen_range(0..span)
}

fn retime(sc: &mut Scenario, rng: &mut StdRng) {
    if sc.events.is_empty() {
        return;
    }
    let i = rng.gen_range(0..sc.events.len() as u64) as usize;
    sc.events[i].at_us = event_time(sc, rng);
}

fn swap(sc: &mut Scenario, rng: &mut StdRng) {
    if sc.events.len() < 2 {
        return;
    }
    let i = rng.gen_range(0..sc.events.len() as u64) as usize;
    let j = rng.gen_range(0..sc.events.len() as u64) as usize;
    let (ti, tj) = (sc.events[i].at_us, sc.events[j].at_us);
    sc.events[i].at_us = tj;
    sc.events[j].at_us = ti;
}

fn duplicate(sc: &mut Scenario, rng: &mut StdRng) {
    if sc.events.is_empty() {
        return;
    }
    let i = rng.gen_range(0..sc.events.len() as u64) as usize;
    let mut e = sc.events[i];
    e.at_us = event_time(sc, rng);
    sc.events.push(e);
}

fn delete(sc: &mut Scenario, rng: &mut StdRng) {
    if sc.events.len() < 2 {
        return;
    }
    let i = rng.gen_range(0..sc.events.len() as u64) as usize;
    sc.events.remove(i);
}

fn insert(sc: &mut Scenario, rng: &mut StdRng) {
    let e = random_event(sc, rng);
    sc.events.push(e);
}

fn retarget(sc: &mut Scenario, rng: &mut StdRng) {
    let n = sc.topo.n;
    let migrates: Vec<usize> = sc
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Migrate { .. }))
        .map(|(i, _)| i)
        .collect();
    if migrates.is_empty() {
        return insert(sc, rng);
    }
    let i = migrates[rng.gen_range(0..migrates.len() as u64) as usize];
    if let EventKind::Migrate { slot, .. } = sc.events[i].kind {
        sc.events[i].kind = EventKind::Migrate {
            slot,
            to: rng.gen_range(0..n as u64) as u16,
        };
    }
}

/// Transplant a window of the donor's events into the base, remapping
/// every reference into the base's slot/machine/edge ranges and scaling
/// times into the base's horizon.
fn splice(sc: &mut Scenario, donor: &Scenario, rng: &mut StdRng) {
    if donor.events.is_empty() {
        return;
    }
    let n = sc.topo.n;
    let slots = sc.total_slots().max(1);
    let edges = sc.topo.edges();
    let start = rng.gen_range(0..donor.events.len() as u64) as usize;
    let len = 1 + rng.gen_range(0..(donor.events.len() - start).min(4) as u64) as usize;
    for de in &donor.events[start..start + len] {
        let at_us = {
            // Scale the donor instant into the base's active window.
            let span = sc.horizon_us.saturating_sub(2_000).max(1);
            1_000 + (de.at_us.saturating_mul(span) / donor.horizon_us.max(1)) % span
        };
        let map_edge = |a: u16, b: u16| edges[(a as usize * 31 + b as usize) % edges.len()];
        let kind = match de.kind {
            EventKind::Migrate { slot, to } => EventKind::Migrate {
                slot: slot % slots,
                to: to % n,
            },
            EventKind::Burst {
                slot,
                count,
                payload,
            } => EventKind::Burst {
                slot: slot % slots,
                count,
                payload,
            },
            EventKind::Partition { a, b } => {
                let (a, b) = map_edge(a, b);
                EventKind::Partition { a, b }
            }
            EventKind::HealEdge { a, b } => {
                let (a, b) = map_edge(a, b);
                EventKind::HealEdge { a, b }
            }
            EventKind::Crash { m } => EventKind::Crash { m: m % n },
            EventKind::Revive { m } => EventKind::Revive { m: m % n },
            EventKind::Degrade { m, factor_pct } => EventKind::Degrade {
                m: m % n,
                factor_pct,
            },
            EventKind::Restore { m } => EventKind::Restore { m: m % n },
        };
        sc.events.push(Event { at_us, kind });
    }
}

/// Clamp times into the active window, restore schedule order, cap the
/// schedule length so repeated duplication can't balloon a scenario.
fn finish(sc: &mut Scenario) {
    for e in &mut sc.events {
        e.at_us = e.at_us.clamp(1, sc.horizon_us.saturating_sub(1));
    }
    sc.events.truncate(64);
    sc.events.sort_by_key(|e| e.at_us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutants_are_valid_and_deterministic() {
        for seed in 0..40u64 {
            let base = Scenario::generate(seed);
            let donor = Scenario::generate(seed.wrapping_add(1));
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let ma = mutate(&base, Some(&donor), &mut a);
            let mb = mutate(&base, Some(&donor), &mut b);
            assert_eq!(ma, mb, "same rng state, same mutant (seed {seed})");
            ma.validate().expect("mutant valid");
            assert!(ma.events.len() <= 64);
            for w in ma.events.windows(2) {
                assert!(w[0].at_us <= w[1].at_us, "schedule stays sorted");
            }
            // Mutant text round-trips like any scenario.
            assert_eq!(Scenario::parse(&ma.to_text()).unwrap(), ma);
        }
    }

    #[test]
    fn mutation_eventually_reaches_every_operator() {
        let base = Scenario::generate(7);
        let donor = Scenario::generate_recovery(8);
        let mut rng = StdRng::seed_from_u64(99);
        let mut changed_schedule = false;
        let mut changed_seed = false;
        let mut changed_quantum = false;
        for _ in 0..200 {
            let m = mutate(&base, Some(&donor), &mut rng);
            changed_schedule |= m.events != base.events;
            changed_seed |= m.seed != base.seed;
            changed_quantum |= m.quantum_us != base.quantum_us;
        }
        assert!(changed_schedule && changed_seed && changed_quantum);
    }

    #[test]
    fn rare_base_can_gain_a_migration() {
        // The E17 mechanism: a rare-regime scenario without any migrate
        // event acquires one through insertion pressure.
        let base = Scenario::generate_rare(11);
        let mut rng = StdRng::seed_from_u64(3);
        let gained = (0..100).any(|_| {
            mutate(&base, None, &mut rng)
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Migrate { .. }))
        });
        assert!(gained);
    }

    #[test]
    fn random_events_are_in_range() {
        let sc = Scenario::generate(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let e = random_event(&sc, &mut rng);
            let mut probe = sc.clone();
            probe.events.push(e);
            probe.validate().expect("alphabet event valid");
        }
    }
}
