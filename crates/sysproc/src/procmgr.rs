//! The process manager.
//!
//! "The process and memory managers handle all the high-level scheduling
//! decisions for processes… They control processes by sending messages to
//! kernels to manipulate process states. For example, although the kernel
//! implements the mechanisms of migrating a process, the process manager
//! makes the decision of when and to where to migrate a process" (§2.3).
//!
//! This implementation offers three services over [`PmMsg`]:
//!
//! * **Spawn** — forwards a `CreateProcess` to the target machine's
//!   kernel and relays the resulting process link to the requester;
//! * **Migrate** — derives a `DELIVERTOKERNEL` link from the carried
//!   process link and sends the kernel a `MigrateRequest` (migration
//!   message #1), passing the requester's reply link along so the
//!   destination kernel's `Done` (#9) reaches the requester directly;
//! * **Kill** — sends `Kill` over a derived `DELIVERTOKERNEL` link.
//!
//! Policy-driven automatic migration (when/where) is the open research
//! question the paper defers; the `demos-policy` crate implements decision
//! rules which harnesses drive against cluster state.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::mgmt::KernelMgmt;
use demos_kernel::{local_tags, Carry, Ctx, Delivered, Program};
use demos_types::proto::KernelOp;
use demos_types::wire::Wire;
use demos_types::{tags, Link, LinkIdx, MachineId};

use crate::proto::{sys, PmMsg};

/// The process manager program.
#[derive(Debug, Default)]
pub struct ProcMgr {
    /// Number of machines whose kernels we hold links to (installed at
    /// bootstrap as link indices 1..=n in order).
    machines: u16,
    /// Pending spawn requests: kernel-mgmt token → reply link index.
    pending: BTreeMap<u32, u32>,
    next_token: u32,
    /// Processes created (statistics).
    pub created: u64,
}

impl ProcMgr {
    /// Program name in the registry.
    pub const NAME: &'static str = "procmgr";

    /// Initial state for a cluster of `machines` machines. The bootstrap
    /// code must install kernel links for machines 0..n as the *first* n
    /// links in the process's table (indices 1..=n).
    pub fn state(machines: u16) -> Vec<u8> {
        let pm = ProcMgr {
            machines,
            ..ProcMgr::default()
        };
        pm.save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut pm = ProcMgr::default();
        if b.remaining() >= 14 {
            pm.machines = b.get_u16();
            pm.created = b.get_u64();
            pm.next_token = b.get_u32();
            let n = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n {
                if b.remaining() < 8 {
                    break;
                }
                let tok = b.get_u32();
                let reply = b.get_u32();
                pm.pending.insert(tok, reply);
            }
        }
        Box::new(pm)
    }

    /// Link-table index of machine `m`'s kernel link (bootstrap layout).
    fn kernel_link(&self, m: MachineId) -> Option<LinkIdx> {
        (m.0 < self.machines).then_some(LinkIdx(1 + m.0 as u32))
    }
}

impl Program for ProcMgr {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            sys::PROCMGR => {
                let Ok(m) = PmMsg::from_bytes(&msg.payload) else {
                    return;
                };
                match m {
                    PmMsg::Spawn {
                        machine,
                        program,
                        state,
                        layout,
                        privileged,
                    } => {
                        let Some(reply) = msg.links.first().copied() else {
                            return;
                        };
                        let Some(klink) = self.kernel_link(machine) else {
                            let _ = ctx.send(
                                reply,
                                sys::PROCMGR,
                                PmMsg::SpawnFailed { reason: 2 }.to_bytes(),
                                &[],
                            );
                            return;
                        };
                        let token = self.next_token;
                        self.next_token = self.next_token.wrapping_add(1);
                        self.pending.insert(token, reply.0);
                        let req = KernelMgmt::CreateProcess {
                            token,
                            name: program,
                            state,
                            layout,
                            privileged,
                        };
                        // Carry a reply link so the kernel's answer comes
                        // back to us.
                        let _ = ctx.send(
                            klink,
                            local_tags::KERNEL_MGMT,
                            req.to_bytes(),
                            &[Carry::New(demos_types::LinkAttrs::NONE)],
                        );
                    }
                    PmMsg::Migrate { dest } => {
                        // Slot 0: requester's reply link (gets Done #9);
                        // slot 1: a link to the process to migrate.
                        let (Some(&reply), Some(&proc_link)) =
                            (msg.links.first(), msg.links.get(1))
                        else {
                            return;
                        };
                        if let Ok(dtk) = ctx.dup_as_dtk(proc_link) {
                            let op = KernelOp::MigrateRequest { dest, flags: 0 };
                            let _ = ctx.send(
                                dtk,
                                tags::KERNEL_OP,
                                op.to_bytes(),
                                &[Carry::Move(reply)],
                            );
                            let _ = ctx.destroy_link(dtk);
                        }
                        let _ = ctx.destroy_link(proc_link);
                    }
                    PmMsg::Kill => {
                        if let Some(&proc_link) = msg.links.first() {
                            if let Ok(dtk) = ctx.dup_as_dtk(proc_link) {
                                let _ =
                                    ctx.send(dtk, tags::KERNEL_OP, KernelOp::Kill.to_bytes(), &[]);
                                let _ = ctx.destroy_link(dtk);
                            }
                            let _ = ctx.destroy_link(proc_link);
                        }
                    }
                    _ => {}
                }
            }
            local_tags::KERNEL_MGMT => {
                let Ok(m) = KernelMgmt::from_bytes(&msg.payload) else {
                    return;
                };
                match m {
                    KernelMgmt::Created { token, pid } => {
                        if let Some(reply_idx) = self.pending.remove(&token) {
                            self.created += 1;
                            let reply = LinkIdx(reply_idx);
                            // The kernel's reply carried a link to the new
                            // process; pass it through to the requester.
                            let carried = msg.links.first().copied();
                            let payload = PmMsg::Spawned {
                                creating_machine: pid.creating_machine,
                                local_uid: pid.local_uid,
                            }
                            .to_bytes();
                            match carried {
                                Some(l) => {
                                    let _ =
                                        ctx.send(reply, sys::PROCMGR, payload, &[Carry::Move(l)]);
                                }
                                None => {
                                    let _ = ctx.send(reply, sys::PROCMGR, payload, &[]);
                                }
                            }
                            let _ = ctx.destroy_link(reply);
                        }
                    }
                    KernelMgmt::CreateFailed { token, reason } => {
                        if let Some(reply_idx) = self.pending.remove(&token) {
                            let reply = LinkIdx(reply_idx);
                            let _ = ctx.send(
                                reply,
                                sys::PROCMGR,
                                PmMsg::SpawnFailed { reason }.to_bytes(),
                                &[],
                            );
                            let _ = ctx.destroy_link(reply);
                        }
                    }
                    KernelMgmt::CreateProcess { .. } => {}
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u16(self.machines);
        b.put_u64(self.created);
        b.put_u32(self.next_token);
        b.put_u16(self.pending.len() as u16);
        for (tok, reply) in &self.pending {
            b.put_u32(*tok);
            b.put_u32(*reply);
        }
        b.to_vec()
    }
}

/// Bootstrap helper: the links the process manager expects, in order —
/// one kernel link per machine. Install these (via
/// `Kernel::install_link`) immediately after spawning the PM, before it
/// handles any message.
pub fn pm_bootstrap_links(machines: u16) -> Vec<Link> {
    (0..machines)
        .map(|m| Link::to_kernel(MachineId(m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        let mut pm = ProcMgr {
            machines: 4,
            created: 2,
            next_token: 7,
            ..Default::default()
        };
        pm.pending.insert(5, 10);
        let back = ProcMgr::restore(&pm.save());
        assert_eq!(back.save(), pm.save());
    }

    #[test]
    fn kernel_link_layout() {
        let pm = ProcMgr {
            machines: 3,
            ..Default::default()
        };
        assert_eq!(pm.kernel_link(MachineId(0)), Some(LinkIdx(1)));
        assert_eq!(pm.kernel_link(MachineId(2)), Some(LinkIdx(3)));
        assert_eq!(pm.kernel_link(MachineId(3)), None);
    }

    #[test]
    fn bootstrap_links_point_at_kernels() {
        let links = pm_bootstrap_links(2);
        assert_eq!(links.len(), 2);
        assert!(links[0].target().is_kernel());
        assert_eq!(links[1].addr.last_known_machine, MachineId(1));
    }
}
