//! DEMOS/MP system server processes (§2.3).
//!
//! "Most of the system functions are implemented in server processes,
//! which are accessed through the communication mechanism." This crate
//! provides the servers the paper names — switchboard, process manager,
//! memory scheduler, the four file-system processes, and the command
//! interpreter — all as ordinary migratable [`demos_kernel::Program`]s,
//! plus the file-system client workload used by the paper's hardest test
//! (migrating a file-system process under active client I/O).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod fsclient;
pub mod memsched;
pub mod procmgr;
pub mod proto;
pub mod shell;
pub mod switchboard;

/// The INIT message tag shared with workload programs (first user tag).
pub mod wl_init {
    /// Bootstrap message carrying configuration links.
    pub const INIT: u16 = demos_types::tags::USER_BASE;
}

pub use fs::{BufferCache, DirServer, DiskServer, FileServer, BLOCK};
pub use fsclient::{fs_client_stats, FsClient, FsClientStats};
pub use memsched::MemSched;
pub use procmgr::{pm_bootstrap_links, ProcMgr};
pub use proto::{sys, FsMsg, MemMsg, PmMsg, SbMsg};
pub use shell::{encode_script, shell_stats, Cmd, ScriptEntry, Shell};
pub use switchboard::Switchboard;

/// Register every system-process program into `r`.
pub fn register(r: &mut demos_kernel::Registry) {
    r.register(Switchboard::NAME, Switchboard::restore);
    r.register(ProcMgr::NAME, ProcMgr::restore);
    r.register(MemSched::NAME, MemSched::restore);
    r.register(DirServer::NAME, DirServer::restore);
    r.register(FileServer::NAME, FileServer::restore);
    r.register(BufferCache::NAME, BufferCache::restore);
    r.register(DiskServer::NAME, DiskServer::restore);
    r.register(FsClient::NAME, FsClient::restore);
    r.register(Shell::NAME, Shell::restore);
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_all() {
        let mut r = demos_kernel::Registry::new();
        super::register(&mut r);
        for name in [
            "switchboard",
            "procmgr",
            "memsched",
            "fs_dir",
            "fs_file",
            "fs_cache",
            "fs_disk",
            "fs_client",
            "shell",
        ] {
            assert!(r.contains(name), "{name} missing");
        }
    }
}
