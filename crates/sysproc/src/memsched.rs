//! The memory scheduler: coarse cluster-wide memory accounting (§2.3).
//!
//! "The process and memory managers … allocate and keep track of usage
//! for system resources such as the CPU, real memory, etc." This server
//! tracks a grant ledger per machine; the process manager and policies
//! consult it before placing or migrating processes. (Kernels enforce
//! their own hard capacity independently — this is the advisory,
//! high-level view.)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Ctx, Delivered, Program};
use demos_types::wire::Wire;
use demos_types::MachineId;

use crate::proto::{sys, MemMsg};

/// The memory-scheduler program.
#[derive(Debug, Default)]
pub struct MemSched {
    /// Capacity per machine, bytes.
    capacity: Vec<u64>,
    /// Granted per machine, bytes.
    granted: Vec<u64>,
    /// Requests served.
    pub requests: u64,
}

impl MemSched {
    /// Program name in the registry.
    pub const NAME: &'static str = "memsched";

    /// Initial state: `machines` machines with `capacity` bytes each.
    pub fn state(machines: u16, capacity: u64) -> Vec<u8> {
        let ms = MemSched {
            capacity: vec![capacity; machines as usize],
            granted: vec![0; machines as usize],
            requests: 0,
        };
        ms.save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut ms = MemSched::default();
        if b.remaining() >= 10 {
            ms.requests = b.get_u64();
            let n = b.get_u16() as usize;
            for _ in 0..n {
                if b.remaining() < 16 {
                    break;
                }
                ms.capacity.push(b.get_u64());
                ms.granted.push(b.get_u64());
            }
        }
        Box::new(ms)
    }

    fn free(&self, m: MachineId) -> u64 {
        let i = m.0 as usize;
        if i >= self.capacity.len() {
            return 0;
        }
        self.capacity[i].saturating_sub(self.granted[i])
    }
}

impl Program for MemSched {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type != sys::MEMSCHED {
            return;
        }
        let Ok(m) = MemMsg::from_bytes(&msg.payload) else {
            return;
        };
        self.requests += 1;
        match m {
            MemMsg::Reserve { machine, bytes } => {
                let i = machine.0 as usize;
                let ok = i < self.capacity.len() && self.free(machine) >= bytes;
                if ok {
                    self.granted[i] += bytes;
                }
                if let Some(reply) = msg.links.first() {
                    let _ = ctx.send(
                        *reply,
                        sys::MEMSCHED,
                        MemMsg::Granted {
                            ok,
                            free: self.free(machine),
                        }
                        .to_bytes(),
                        &[],
                    );
                }
            }
            MemMsg::Release { machine, bytes } => {
                let i = machine.0 as usize;
                if i < self.granted.len() {
                    self.granted[i] = self.granted[i].saturating_sub(bytes);
                }
            }
            MemMsg::Query { machine } => {
                if let Some(reply) = msg.links.first() {
                    let _ = ctx.send(
                        *reply,
                        sys::MEMSCHED,
                        MemMsg::Granted {
                            ok: true,
                            free: self.free(machine),
                        }
                        .to_bytes(),
                        &[],
                    );
                }
            }
            MemMsg::Granted { .. } => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.requests);
        b.put_u16(self.capacity.len() as u16);
        for i in 0..self.capacity.len() {
            b.put_u64(self.capacity[i]);
            b.put_u64(self.granted[i]);
        }
        b.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        let ms = MemSched {
            capacity: vec![100, 200],
            granted: vec![10, 0],
            requests: 3,
        };
        let back = MemSched::restore(&ms.save());
        assert_eq!(back.save(), ms.save());
    }

    #[test]
    fn free_accounting() {
        let ms = MemSched {
            capacity: vec![100],
            granted: vec![30],
            requests: 0,
        };
        assert_eq!(ms.free(MachineId(0)), 70);
        assert_eq!(ms.free(MachineId(9)), 0, "unknown machine has no memory");
    }
}
