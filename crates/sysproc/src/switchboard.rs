//! The switchboard: "a server that distributes links by name. It is used
//! by the system and user processes to connect arbitrary processes
//! together" (§2.3).
//!
//! Links registered with the switchboard live in its own link table (as
//! indices in program state), so the whole name service migrates like any
//! other process — one of the demonstrations the examples run.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, Program};
use demos_types::wire::Wire;
use demos_types::LinkIdx;

use crate::proto::{sys, SbMsg};

/// The switchboard server program.
#[derive(Debug, Default)]
pub struct Switchboard {
    /// name → link-table index of the registered link.
    names: BTreeMap<String, u32>,
    /// Successful lookups served (statistics).
    pub lookups: u64,
}

impl Switchboard {
    /// Program name in the registry.
    pub const NAME: &'static str = "switchboard";

    /// Initial (empty) state.
    pub fn state() -> Vec<u8> {
        Switchboard::default().save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut sb = Switchboard::default();
        if b.remaining() >= 8 {
            sb.lookups = b.get_u64();
            let n = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n {
                let Ok(name) = demos_types::wire::get_string(&mut b, "sb.name", 128) else {
                    break;
                };
                if b.remaining() < 4 {
                    break;
                }
                sb.names.insert(name, b.get_u32());
            }
        }
        Box::new(sb)
    }
}

impl Program for Switchboard {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type != sys::SWITCHBOARD {
            return;
        }
        let Ok(m) = SbMsg::from_bytes(&msg.payload) else {
            return;
        };
        match m {
            SbMsg::Register { name } => {
                // Two links: [reply, target]; one link: [target] (no
                // acknowledgement wanted — bootstrap registrations).
                let (reply_slot, target) = match msg.links.len() {
                    0 => (None, None),
                    1 => (None, msg.links.first().copied()),
                    _ => (msg.links.first().copied(), msg.links.get(1).copied()),
                };
                let ok = target.is_some();
                if let Some(t) = target {
                    // Replacing an old registration: drop the stale link.
                    if let Some(old) = self.names.insert(name, t.0) {
                        let _ = ctx.destroy_link(LinkIdx(old));
                    }
                }
                if let Some(reply) = reply_slot {
                    let _ = ctx.send(
                        reply,
                        sys::SWITCHBOARD,
                        SbMsg::Registered { ok }.to_bytes(),
                        &[],
                    );
                }
            }
            SbMsg::Lookup { name } => {
                let Some(reply) = msg.links.first().copied() else {
                    return;
                };
                match self.names.get(&name).copied() {
                    Some(idx) => {
                        self.lookups += 1;
                        let _ = ctx.send(
                            reply,
                            sys::SWITCHBOARD,
                            SbMsg::Found { name }.to_bytes(),
                            &[Carry::Dup(LinkIdx(idx))],
                        );
                    }
                    None => {
                        let _ = ctx.send(
                            reply,
                            sys::SWITCHBOARD,
                            SbMsg::NotFound { name }.to_bytes(),
                            &[],
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.lookups);
        b.put_u16(self.names.len() as u16);
        for (name, idx) in &self.names {
            demos_types::wire::put_string(&mut b, name);
            b.put_u32(*idx);
        }
        b.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        let mut sb = Switchboard::default();
        sb.names.insert("fs".into(), 3);
        sb.names.insert("pm".into(), 5);
        sb.lookups = 9;
        let back = Switchboard::restore(&sb.save());
        assert_eq!(back.save(), sb.save());
    }

    #[test]
    fn empty_state() {
        let back = Switchboard::restore(&Switchboard::state());
        assert_eq!(back.save(), Switchboard::default().save());
    }
}
