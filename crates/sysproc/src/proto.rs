//! Wire protocols of the system server processes (§2.3).
//!
//! Every server is an ordinary process reached over links; requests carry
//! a reply link as their first carried link (the DEMOS request/reply
//! convention, §2.4). Payloads are byte-exact like everything else.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::ImageLayout;
use demos_types::wire::{self, Wire, WireError};
use demos_types::MachineId;

/// Message-type tags of the system services.
pub mod sys {
    use demos_types::tags::SYS_BASE;
    /// Switchboard (name service).
    pub const SWITCHBOARD: u16 = SYS_BASE;
    /// Process manager.
    pub const PROCMGR: u16 = SYS_BASE + 1;
    /// Memory scheduler.
    pub const MEMSCHED: u16 = SYS_BASE + 2;
    /// File system (all four processes).
    pub const FS: u16 = SYS_BASE + 3;
    /// Command interpreter.
    pub const SHELL: u16 = SYS_BASE + 4;
}

const MAX_NAME: usize = 128;
const MAX_DATA: usize = 4096;

/// Switchboard protocol: "a server that distributes links by name" (§2.3).
#[derive(Clone, Debug, PartialEq)]
pub enum SbMsg {
    /// Register the link carried in slot 1 under `name` (slot 0: reply).
    Register {
        /// Service name.
        name: String,
    },
    /// Look `name` up (slot 0: reply).
    Lookup {
        /// Service name.
        name: String,
    },
    /// Registration outcome.
    Registered {
        /// Whether the name was stored (false = table full / no link).
        ok: bool,
    },
    /// Lookup hit; the link is carried in slot 0 of the reply message.
    Found {
        /// Echoed name.
        name: String,
    },
    /// Lookup miss.
    NotFound {
        /// Echoed name.
        name: String,
    },
}

impl Wire for SbMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SbMsg::Register { name } => {
                buf.put_u8(1);
                wire::put_string(buf, name);
            }
            SbMsg::Lookup { name } => {
                buf.put_u8(2);
                wire::put_string(buf, name);
            }
            SbMsg::Registered { ok } => {
                buf.put_u8(3);
                buf.put_u8(*ok as u8);
            }
            SbMsg::Found { name } => {
                buf.put_u8(4);
                wire::put_string(buf, name);
            }
            SbMsg::NotFound { name } => {
                buf.put_u8(5);
                wire::put_string(buf, name);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("SbMsg"));
        }
        match buf.get_u8() {
            1 => Ok(SbMsg::Register {
                name: wire::get_string(buf, "Register.name", MAX_NAME)?,
            }),
            2 => Ok(SbMsg::Lookup {
                name: wire::get_string(buf, "Lookup.name", MAX_NAME)?,
            }),
            3 => {
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("Registered"));
                }
                Ok(SbMsg::Registered {
                    ok: buf.get_u8() != 0,
                })
            }
            4 => Ok(SbMsg::Found {
                name: wire::get_string(buf, "Found.name", MAX_NAME)?,
            }),
            5 => Ok(SbMsg::NotFound {
                name: wire::get_string(buf, "NotFound.name", MAX_NAME)?,
            }),
            t => Err(WireError::BadTag {
                what: "SbMsg",
                tag: t as u16,
            }),
        }
    }
}

/// Process-manager protocol (§2.3): creation, migration, destruction.
#[derive(Clone, Debug, PartialEq)]
pub enum PmMsg {
    /// Create a process on `machine` (slot 0: reply).
    Spawn {
        /// Target machine.
        machine: MachineId,
        /// Registered program name.
        program: String,
        /// Initial program state.
        state: Bytes,
        /// Image layout.
        layout: ImageLayout,
        /// Privileged (system) process?
        privileged: bool,
    },
    /// Creation succeeded; a link to the new process rides in slot 0.
    Spawned {
        /// The new process (pid encoded in the carried link too).
        creating_machine: MachineId,
        /// Its local uid.
        local_uid: u32,
    },
    /// Creation failed.
    SpawnFailed {
        /// 0 capacity, 1 unknown program, 2 other.
        reason: u8,
    },
    /// Migrate the process whose link rides in slot 1 to `dest`
    /// (slot 0: reply — receives the kernel's `MigrateMsg::Done`).
    Migrate {
        /// Destination machine.
        dest: MachineId,
    },
    /// Kill the process whose link rides in slot 0.
    Kill,
}

impl Wire for PmMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PmMsg::Spawn {
                machine,
                program,
                state,
                layout,
                privileged,
            } => {
                buf.put_u8(1);
                machine.encode(buf);
                wire::put_string(buf, program);
                wire::put_bytes(buf, state);
                layout.encode(buf);
                buf.put_u8(*privileged as u8);
            }
            PmMsg::Spawned {
                creating_machine,
                local_uid,
            } => {
                buf.put_u8(2);
                creating_machine.encode(buf);
                buf.put_u32(*local_uid);
            }
            PmMsg::SpawnFailed { reason } => {
                buf.put_u8(3);
                buf.put_u8(*reason);
            }
            PmMsg::Migrate { dest } => {
                buf.put_u8(4);
                dest.encode(buf);
            }
            PmMsg::Kill => buf.put_u8(5),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("PmMsg"));
        }
        match buf.get_u8() {
            1 => {
                let machine = MachineId::decode(buf)?;
                let program = wire::get_string(buf, "Spawn.program", MAX_NAME)?;
                let state = wire::get_bytes(buf, "Spawn.state", 1 << 20)?;
                let layout = ImageLayout::decode(buf)?;
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("Spawn.privileged"));
                }
                Ok(PmMsg::Spawn {
                    machine,
                    program,
                    state,
                    layout,
                    privileged: buf.get_u8() != 0,
                })
            }
            2 => {
                let creating_machine = MachineId::decode(buf)?;
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated("Spawned"));
                }
                Ok(PmMsg::Spawned {
                    creating_machine,
                    local_uid: buf.get_u32(),
                })
            }
            3 => {
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("SpawnFailed"));
                }
                Ok(PmMsg::SpawnFailed {
                    reason: buf.get_u8(),
                })
            }
            4 => Ok(PmMsg::Migrate {
                dest: MachineId::decode(buf)?,
            }),
            5 => Ok(PmMsg::Kill),
            t => Err(WireError::BadTag {
                what: "PmMsg",
                tag: t as u16,
            }),
        }
    }
}

/// Memory-scheduler protocol (§2.3): coarse per-machine memory grants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemMsg {
    /// Reserve `bytes` on `machine` (slot 0: reply).
    Reserve {
        /// Machine.
        machine: MachineId,
        /// Bytes requested.
        bytes: u64,
    },
    /// Return `bytes` on `machine`.
    Release {
        /// Machine.
        machine: MachineId,
        /// Bytes returned.
        bytes: u64,
    },
    /// How much is free on `machine`? (slot 0: reply)
    Query {
        /// Machine.
        machine: MachineId,
    },
    /// Reply to `Reserve`/`Query`.
    Granted {
        /// Reservation succeeded (always true for `Query`).
        ok: bool,
        /// Remaining free bytes.
        free: u64,
    },
}

impl Wire for MemMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MemMsg::Reserve { machine, bytes } => {
                buf.put_u8(1);
                machine.encode(buf);
                buf.put_u64(*bytes);
            }
            MemMsg::Release { machine, bytes } => {
                buf.put_u8(2);
                machine.encode(buf);
                buf.put_u64(*bytes);
            }
            MemMsg::Query { machine } => {
                buf.put_u8(3);
                machine.encode(buf);
            }
            MemMsg::Granted { ok, free } => {
                buf.put_u8(4);
                buf.put_u8(*ok as u8);
                buf.put_u64(*free);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("MemMsg"));
        }
        match buf.get_u8() {
            1 => {
                let machine = MachineId::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated("Reserve"));
                }
                Ok(MemMsg::Reserve {
                    machine,
                    bytes: buf.get_u64(),
                })
            }
            2 => {
                let machine = MachineId::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated("Release"));
                }
                Ok(MemMsg::Release {
                    machine,
                    bytes: buf.get_u64(),
                })
            }
            3 => Ok(MemMsg::Query {
                machine: MachineId::decode(buf)?,
            }),
            4 => {
                if buf.remaining() < 9 {
                    return Err(WireError::Truncated("Granted"));
                }
                Ok(MemMsg::Granted {
                    ok: buf.get_u8() != 0,
                    free: buf.get_u64(),
                })
            }
            t => Err(WireError::BadTag {
                what: "MemMsg",
                tag: t as u16,
            }),
        }
    }
}

/// File-system protocol, spanning the four fs processes (§2.3: directory,
/// file, buffer-cache and disk servers; same structure as the DEMOS file
/// system of [Powell 77], simplified).
#[derive(Clone, Debug, PartialEq)]
pub enum FsMsg {
    // -- directory server --
    /// Bind `name` to a fresh fid (slot 0: reply → `DirDone`).
    DirCreate {
        /// Request token echoed in the reply.
        tok: u32,
        /// File name.
        name: String,
    },
    /// Resolve `name` (slot 0: reply → `DirDone` or `Err`).
    DirLookup {
        /// Request token echoed in the reply.
        tok: u32,
        /// File name.
        name: String,
    },
    /// Directory reply.
    DirDone {
        /// Echoed token.
        tok: u32,
        /// The file id.
        fid: u32,
    },
    // -- file server (client-facing) --
    /// Create a file (slot 0: reply → `Done`).
    Create {
        /// File name.
        name: String,
    },
    /// Open by name (slot 0: reply → `Done { fid, len }`).
    Open {
        /// File name.
        name: String,
    },
    /// Read up to one block (slot 0: reply → `Data`).
    Read {
        /// File id from `Open`/`Create`.
        fid: u32,
        /// Byte offset.
        off: u32,
        /// Bytes wanted.
        len: u32,
    },
    /// Write within one block (slot 0: reply → `Done`).
    Write {
        /// File id.
        fid: u32,
        /// Byte offset.
        off: u32,
        /// The bytes.
        bytes: Bytes,
    },
    /// Read reply.
    Data {
        /// The bytes.
        bytes: Bytes,
    },
    /// Generic success reply.
    Done {
        /// File id.
        fid: u32,
        /// File length (Open/Create) or bytes written (Write).
        len: u32,
    },
    /// Failure reply.
    Err {
        /// 1 no such file, 2 bad range, 3 exists, 4 internal.
        code: u8,
    },
    // -- block layer (cache + disk) --
    /// Read block `blk` (slot 0: reply → `BData`).
    BRead {
        /// Request token echoed in the reply.
        tok: u32,
        /// Block id.
        blk: u32,
    },
    /// Write block `blk` (slot 0: reply → `BOk`).
    BWrite {
        /// Request token.
        tok: u32,
        /// Block id.
        blk: u32,
        /// Exactly one block of bytes.
        bytes: Bytes,
    },
    /// Allocate a block (slot 0: reply → `BOk { blk }`).
    BAlloc {
        /// Request token.
        tok: u32,
    },
    /// Block-read reply.
    BData {
        /// Echoed token.
        tok: u32,
        /// Block id.
        blk: u32,
        /// The block contents.
        bytes: Bytes,
    },
    /// Block-write / alloc reply.
    BOk {
        /// Echoed token.
        tok: u32,
        /// Block id.
        blk: u32,
    },
}

impl Wire for FsMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            FsMsg::DirCreate { tok, name } => {
                buf.put_u8(1);
                buf.put_u32(*tok);
                wire::put_string(buf, name);
            }
            FsMsg::DirLookup { tok, name } => {
                buf.put_u8(2);
                buf.put_u32(*tok);
                wire::put_string(buf, name);
            }
            FsMsg::DirDone { tok, fid } => {
                buf.put_u8(3);
                buf.put_u32(*tok);
                buf.put_u32(*fid);
            }
            FsMsg::Create { name } => {
                buf.put_u8(4);
                wire::put_string(buf, name);
            }
            FsMsg::Open { name } => {
                buf.put_u8(5);
                wire::put_string(buf, name);
            }
            FsMsg::Read { fid, off, len } => {
                buf.put_u8(6);
                buf.put_u32(*fid);
                buf.put_u32(*off);
                buf.put_u32(*len);
            }
            FsMsg::Write { fid, off, bytes } => {
                buf.put_u8(7);
                buf.put_u32(*fid);
                buf.put_u32(*off);
                wire::put_bytes(buf, bytes);
            }
            FsMsg::Data { bytes } => {
                buf.put_u8(8);
                wire::put_bytes(buf, bytes);
            }
            FsMsg::Done { fid, len } => {
                buf.put_u8(9);
                buf.put_u32(*fid);
                buf.put_u32(*len);
            }
            FsMsg::Err { code } => {
                buf.put_u8(10);
                buf.put_u8(*code);
            }
            FsMsg::BRead { tok, blk } => {
                buf.put_u8(11);
                buf.put_u32(*tok);
                buf.put_u32(*blk);
            }
            FsMsg::BWrite { tok, blk, bytes } => {
                buf.put_u8(12);
                buf.put_u32(*tok);
                buf.put_u32(*blk);
                wire::put_bytes(buf, bytes);
            }
            FsMsg::BAlloc { tok } => {
                buf.put_u8(13);
                buf.put_u32(*tok);
            }
            FsMsg::BData { tok, blk, bytes } => {
                buf.put_u8(14);
                buf.put_u32(*tok);
                buf.put_u32(*blk);
                wire::put_bytes(buf, bytes);
            }
            FsMsg::BOk { tok, blk } => {
                buf.put_u8(15);
                buf.put_u32(*tok);
                buf.put_u32(*blk);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("FsMsg"));
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| {
            if buf.remaining() < n {
                Err(WireError::Truncated("FsMsg"))
            } else {
                Ok(())
            }
        };
        Ok(match tag {
            1 => {
                need(buf, 4)?;
                let tok = buf.get_u32();
                FsMsg::DirCreate {
                    tok,
                    name: wire::get_string(buf, "DirCreate", MAX_NAME)?,
                }
            }
            2 => {
                need(buf, 4)?;
                let tok = buf.get_u32();
                FsMsg::DirLookup {
                    tok,
                    name: wire::get_string(buf, "DirLookup", MAX_NAME)?,
                }
            }
            3 => {
                need(buf, 8)?;
                FsMsg::DirDone {
                    tok: buf.get_u32(),
                    fid: buf.get_u32(),
                }
            }
            4 => FsMsg::Create {
                name: wire::get_string(buf, "Create", MAX_NAME)?,
            },
            5 => FsMsg::Open {
                name: wire::get_string(buf, "Open", MAX_NAME)?,
            },
            6 => {
                need(buf, 12)?;
                FsMsg::Read {
                    fid: buf.get_u32(),
                    off: buf.get_u32(),
                    len: buf.get_u32(),
                }
            }
            7 => {
                need(buf, 8)?;
                let fid = buf.get_u32();
                let off = buf.get_u32();
                FsMsg::Write {
                    fid,
                    off,
                    bytes: wire::get_bytes(buf, "Write.bytes", MAX_DATA)?,
                }
            }
            8 => FsMsg::Data {
                bytes: wire::get_bytes(buf, "Data.bytes", MAX_DATA)?,
            },
            9 => {
                need(buf, 8)?;
                FsMsg::Done {
                    fid: buf.get_u32(),
                    len: buf.get_u32(),
                }
            }
            10 => {
                need(buf, 1)?;
                FsMsg::Err { code: buf.get_u8() }
            }
            11 => {
                need(buf, 8)?;
                FsMsg::BRead {
                    tok: buf.get_u32(),
                    blk: buf.get_u32(),
                }
            }
            12 => {
                need(buf, 8)?;
                let tok = buf.get_u32();
                let blk = buf.get_u32();
                FsMsg::BWrite {
                    tok,
                    blk,
                    bytes: wire::get_bytes(buf, "BWrite.bytes", MAX_DATA)?,
                }
            }
            13 => {
                need(buf, 4)?;
                FsMsg::BAlloc { tok: buf.get_u32() }
            }
            14 => {
                need(buf, 8)?;
                let tok = buf.get_u32();
                let blk = buf.get_u32();
                FsMsg::BData {
                    tok,
                    blk,
                    bytes: wire::get_bytes(buf, "BData.bytes", MAX_DATA)?,
                }
            }
            15 => {
                need(buf, 8)?;
                FsMsg::BOk {
                    tok: buf.get_u32(),
                    blk: buf.get_u32(),
                }
            }
            t => {
                return Err(WireError::BadTag {
                    what: "FsMsg",
                    tag: t as u16,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::wire::roundtrip;

    #[test]
    fn sb_roundtrips() {
        for m in [
            SbMsg::Register { name: "fs".into() },
            SbMsg::Lookup { name: "pm".into() },
            SbMsg::Registered { ok: true },
            SbMsg::Found { name: "fs".into() },
            SbMsg::NotFound { name: "x".into() },
        ] {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn pm_roundtrips() {
        for m in [
            PmMsg::Spawn {
                machine: MachineId(2),
                program: "cargo".into(),
                state: Bytes::from_static(b"s"),
                layout: ImageLayout::default(),
                privileged: false,
            },
            PmMsg::Spawned {
                creating_machine: MachineId(2),
                local_uid: 9,
            },
            PmMsg::SpawnFailed { reason: 1 },
            PmMsg::Migrate { dest: MachineId(3) },
            PmMsg::Kill,
        ] {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn mem_roundtrips() {
        for m in [
            MemMsg::Reserve {
                machine: MachineId(1),
                bytes: 4096,
            },
            MemMsg::Release {
                machine: MachineId(1),
                bytes: 4096,
            },
            MemMsg::Query {
                machine: MachineId(0),
            },
            MemMsg::Granted {
                ok: true,
                free: 1 << 20,
            },
        ] {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn fs_roundtrips() {
        for m in [
            FsMsg::DirCreate {
                tok: 1,
                name: "a".into(),
            },
            FsMsg::DirLookup {
                tok: 1,
                name: "a".into(),
            },
            FsMsg::DirDone { tok: 1, fid: 3 },
            FsMsg::Create { name: "a".into() },
            FsMsg::Open { name: "a".into() },
            FsMsg::Read {
                fid: 3,
                off: 0,
                len: 512,
            },
            FsMsg::Write {
                fid: 3,
                off: 8,
                bytes: Bytes::from_static(b"xyz"),
            },
            FsMsg::Data {
                bytes: Bytes::from_static(b"xyz"),
            },
            FsMsg::Done { fid: 3, len: 3 },
            FsMsg::Err { code: 2 },
            FsMsg::BRead { tok: 1, blk: 7 },
            FsMsg::BWrite {
                tok: 1,
                blk: 7,
                bytes: Bytes::from_static(&[0u8; 512]),
            },
            FsMsg::BAlloc { tok: 2 },
            FsMsg::BData {
                tok: 1,
                blk: 7,
                bytes: Bytes::from_static(&[0u8; 512]),
            },
            FsMsg::BOk { tok: 2, blk: 8 },
        ] {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn bad_tags() {
        let mut b = Bytes::from_static(&[0xee]);
        assert!(SbMsg::decode(&mut b.clone()).is_err());
        assert!(PmMsg::decode(&mut b.clone()).is_err());
        assert!(MemMsg::decode(&mut b.clone()).is_err());
        assert!(FsMsg::decode(&mut b).is_err());
    }
}
