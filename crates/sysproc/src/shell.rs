//! The command interpreter: scripted interactive access (§2.3).
//!
//! "The command interpreter allows interactive access to DEMOS/MP
//! programs." Ours executes a pre-compiled script of timed commands
//! against the process manager: spawn a program somewhere, migrate the
//! n-th process it created, kill it, or log a marker. It exists to drive
//! the runnable examples the way an operator at a terminal would have.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, ImageLayout, Program};
use demos_types::proto::MigrateMsg;
use demos_types::wire::{self, Wire};
use demos_types::{tags, Duration, LinkAttrs, LinkIdx, MachineId};

use crate::proto::{sys, PmMsg};
use crate::wl_init::INIT;

/// One scripted command.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// Spawn `program` on `machine` with the given initial state.
    Spawn {
        /// Target machine.
        machine: MachineId,
        /// Registered program name.
        program: String,
        /// Initial state blob.
        state: Vec<u8>,
        /// Image layout.
        layout: ImageLayout,
    },
    /// Migrate the `nth` process this shell created to `dest`.
    Migrate {
        /// Index into the shell's creation history.
        nth: u16,
        /// Destination machine.
        dest: MachineId,
    },
    /// Kill the `nth` created process.
    Kill {
        /// Index into the creation history.
        nth: u16,
    },
    /// Emit a trace log line.
    Log(String),
}

/// A script entry: wait `delay_us`, then run the command.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptEntry {
    /// Delay before the command, microseconds.
    pub delay_us: u32,
    /// The command.
    pub cmd: Cmd,
}

/// Encode a script for [`Shell::state`].
pub fn encode_script(entries: &[ScriptEntry]) -> Vec<u8> {
    let mut b = BytesMut::new();
    b.put_u16(entries.len() as u16);
    for e in entries {
        b.put_u32(e.delay_us);
        match &e.cmd {
            Cmd::Spawn {
                machine,
                program,
                state,
                layout,
            } => {
                b.put_u8(1);
                machine.encode(&mut b);
                wire::put_string(&mut b, program);
                wire::put_bytes(&mut b, state);
                layout.encode(&mut b);
            }
            Cmd::Migrate { nth, dest } => {
                b.put_u8(2);
                b.put_u16(*nth);
                dest.encode(&mut b);
            }
            Cmd::Kill { nth } => {
                b.put_u8(3);
                b.put_u16(*nth);
            }
            Cmd::Log(s) => {
                b.put_u8(4);
                wire::put_string(&mut b, s);
            }
        }
    }
    b.to_vec()
}

fn decode_script(b: &mut Bytes) -> Vec<ScriptEntry> {
    let mut out = Vec::new();
    if b.remaining() < 2 {
        return out;
    }
    let n = b.get_u16() as usize;
    for _ in 0..n {
        if b.remaining() < 5 {
            break;
        }
        let delay_us = b.get_u32();
        let cmd = match b.get_u8() {
            1 => {
                let Ok(machine) = MachineId::decode(b) else {
                    break;
                };
                let Ok(program) = wire::get_string(b, "shell.program", 128) else {
                    break;
                };
                let Ok(state) = wire::get_bytes(b, "shell.state", 1 << 20) else {
                    break;
                };
                let Ok(layout) = ImageLayout::decode(b) else {
                    break;
                };
                Cmd::Spawn {
                    machine,
                    program,
                    state: state.to_vec(),
                    layout,
                }
            }
            2 => {
                if b.remaining() < 4 {
                    break;
                }
                let nth = b.get_u16();
                let Ok(dest) = MachineId::decode(b) else {
                    break;
                };
                Cmd::Migrate { nth, dest }
            }
            3 => {
                if b.remaining() < 2 {
                    break;
                }
                Cmd::Kill { nth: b.get_u16() }
            }
            _ => {
                let Ok(s) = wire::get_string(b, "shell.log", 256) else {
                    break;
                };
                Cmd::Log(s)
            }
        };
        out.push(ScriptEntry { delay_us, cmd });
    }
    out
}

/// The command-interpreter program.
#[derive(Debug, Default)]
pub struct Shell {
    /// Link to the process manager (0 until INIT).
    pm: u32,
    /// The script.
    script: Vec<ScriptEntry>,
    /// Next entry to execute.
    pc: u16,
    /// Links to processes created so far (link-table indices).
    created: Vec<u32>,
    /// Spawn completions observed.
    pub spawned_ok: u64,
    /// Spawn failures observed.
    pub spawn_failed: u64,
    /// Migration completions observed (`Done` status 0).
    pub migrations_ok: u64,
    /// Migration failures observed.
    pub migrations_failed: u64,
}

impl Shell {
    /// Program name in the registry.
    pub const NAME: &'static str = "shell";

    /// Initial state for a script.
    pub fn state(entries: &[ScriptEntry]) -> Vec<u8> {
        let shell = Shell {
            script: decode_script(&mut Bytes::from(encode_script(entries))),
            ..Default::default()
        };
        shell.save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut s = Shell::default();
        if b.remaining() >= 4 + 2 + 32 {
            s.pm = b.get_u32();
            s.pc = b.get_u16();
            s.spawned_ok = b.get_u64();
            s.spawn_failed = b.get_u64();
            s.migrations_ok = b.get_u64();
            s.migrations_failed = b.get_u64();
            let nc = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..nc {
                if b.remaining() < 4 {
                    break;
                }
                s.created.push(b.get_u32());
            }
            s.script = decode_script(&mut b);
        }
        Box::new(s)
    }

    fn arm_next(&self, ctx: &mut Ctx<'_>) {
        if let Some(e) = self.script.get(self.pc as usize) {
            ctx.set_timer(Duration::from_micros(e.delay_us.max(1) as u64), 1);
        }
    }
}

impl Program for Shell {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            INIT => {
                if let Some(&pm) = msg.links.first() {
                    self.pm = pm.0;
                    self.arm_next(ctx);
                }
            }
            sys::PROCMGR => {
                let Ok(m) = PmMsg::from_bytes(&msg.payload) else {
                    return;
                };
                match m {
                    PmMsg::Spawned { .. } => {
                        self.spawned_ok += 1;
                        if let Some(&l) = msg.links.first() {
                            self.created.push(l.0);
                        }
                    }
                    PmMsg::SpawnFailed { .. } => self.spawn_failed += 1,
                    _ => {}
                }
            }
            tags::MIGRATE => {
                if let Ok(MigrateMsg::Done { status, .. }) = MigrateMsg::from_bytes(&msg.payload) {
                    if status == 0 {
                        self.migrations_ok += 1;
                    } else {
                        self.migrations_failed += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(entry) = self.script.get(self.pc as usize).cloned() else {
            return;
        };
        self.pc += 1;
        let pm = (self.pm != 0).then_some(LinkIdx(self.pm));
        match entry.cmd {
            Cmd::Spawn {
                machine,
                program,
                state,
                layout,
            } => {
                if let Some(pm) = pm {
                    let req = PmMsg::Spawn {
                        machine,
                        program,
                        state: Bytes::from(state),
                        layout,
                        privileged: false,
                    };
                    let _ = ctx.send(
                        pm,
                        sys::PROCMGR,
                        req.to_bytes(),
                        &[Carry::New(LinkAttrs::NONE)],
                    );
                }
            }
            Cmd::Migrate { nth, dest } => {
                if let (Some(pm), Some(&proc_idx)) = (pm, self.created.get(nth as usize)) {
                    // Slot 0: our reply link (for Done); slot 1: a copy of
                    // the process link.
                    let _ = ctx.send(
                        pm,
                        sys::PROCMGR,
                        PmMsg::Migrate { dest }.to_bytes(),
                        &[Carry::New(LinkAttrs::NONE), Carry::Dup(LinkIdx(proc_idx))],
                    );
                }
            }
            Cmd::Kill { nth } => {
                if let (Some(pm), Some(&proc_idx)) = (pm, self.created.get(nth as usize)) {
                    let _ = ctx.send(
                        pm,
                        sys::PROCMGR,
                        PmMsg::Kill.to_bytes(),
                        &[Carry::Dup(LinkIdx(proc_idx))],
                    );
                }
            }
            Cmd::Log(s) => ctx.log(s),
        }
        self.arm_next(ctx);
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.pm);
        b.put_u16(self.pc);
        b.put_u64(self.spawned_ok);
        b.put_u64(self.spawn_failed);
        b.put_u64(self.migrations_ok);
        b.put_u64(self.migrations_failed);
        b.put_u16(self.created.len() as u16);
        for c in &self.created {
            b.put_u32(*c);
        }
        b.extend_from_slice(&encode_script(&self.script));
        b.to_vec()
    }
}

/// Parse shell counters from a state blob:
/// `(spawned_ok, spawn_failed, migrations_ok, migrations_failed)`.
pub fn shell_stats(state: &[u8]) -> (u64, u64, u64, u64) {
    let mut b = Bytes::copy_from_slice(state);
    if b.remaining() < 4 + 2 + 32 {
        return (0, 0, 0, 0);
    }
    b.advance(6);
    (b.get_u64(), b.get_u64(), b.get_u64(), b.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script() -> Vec<ScriptEntry> {
        vec![
            ScriptEntry {
                delay_us: 100,
                cmd: Cmd::Spawn {
                    machine: MachineId(1),
                    program: "cargo".into(),
                    state: vec![0; 8],
                    layout: ImageLayout::default(),
                },
            },
            ScriptEntry {
                delay_us: 50,
                cmd: Cmd::Migrate {
                    nth: 0,
                    dest: MachineId(2),
                },
            },
            ScriptEntry {
                delay_us: 10,
                cmd: Cmd::Log("done".into()),
            },
            ScriptEntry {
                delay_us: 10,
                cmd: Cmd::Kill { nth: 0 },
            },
        ]
    }

    #[test]
    fn script_roundtrip() {
        let enc = encode_script(&script());
        let dec = decode_script(&mut Bytes::from(enc));
        assert_eq!(dec, script());
    }

    #[test]
    fn state_roundtrip() {
        let s = Shell {
            pm: 1,
            pc: 2,
            created: vec![5, 9],
            spawned_ok: 2,
            script: script(),
            ..Default::default()
        };
        let back = Shell::restore(&s.save());
        assert_eq!(back.save(), s.save());
        assert_eq!(shell_stats(&s.save()), (2, 0, 0, 0));
    }
}
