//! The file system: four cooperating server processes (§2.3).
//!
//! "The file system (actually, four processes)" — reproduced here as:
//!
//! * [`DirServer`] — file names → file ids;
//! * [`FileServer`] — client-facing: create/open/read/write, file
//!   metadata (length, block list), orchestrating the block layer;
//! * [`BufferCache`] — an LRU block cache in front of the disk;
//! * [`DiskServer`] — block storage with simulated seek latency. Blocks
//!   live in its program state, so the disk server's image grows with
//!   stored data — which is exactly what makes migrating a file-system
//!   process the paper's hardest test (§2.3: "this is more difficult than
//!   moving a user process").
//!
//! Every in-flight request is tracked in serializable program state keyed
//! by link-table indices, so any of the four processes can be migrated
//! mid-operation: queued messages are forwarded (step 6), the link table
//! travels whole, and the operation completes at the new location.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, Program};
use demos_types::wire::{self, Wire};
use demos_types::{Duration, LinkAttrs, LinkIdx};

use crate::proto::{sys, FsMsg};

/// File-system block size.
pub const BLOCK: u32 = 512;

fn opt_link(v: u32) -> Option<LinkIdx> {
    (v != 0).then_some(LinkIdx(v))
}

fn reply_err(ctx: &mut Ctx<'_>, reply: Option<&LinkIdx>, code: u8) {
    if let Some(r) = reply {
        let _ = ctx.send(*r, sys::FS, FsMsg::Err { code }.to_bytes(), &[]);
    }
}

// ----------------------------------------------------------------------
// Directory server
// ----------------------------------------------------------------------

/// Name → file-id mapping.
#[derive(Debug, Default)]
pub struct DirServer {
    names: BTreeMap<String, u32>,
    next_fid: u32,
}

impl DirServer {
    /// Program name in the registry.
    pub const NAME: &'static str = "fs_dir";

    /// Initial state.
    pub fn state() -> Vec<u8> {
        DirServer {
            names: BTreeMap::new(),
            next_fid: 1,
        }
        .save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut d = DirServer::default();
        if b.remaining() >= 6 {
            d.next_fid = b.get_u32();
            let n = b.get_u16() as usize;
            for _ in 0..n {
                let Ok(name) = wire::get_string(&mut b, "dir.name", 128) else {
                    break;
                };
                if b.remaining() < 4 {
                    break;
                }
                d.names.insert(name, b.get_u32());
            }
        }
        if d.next_fid == 0 {
            d.next_fid = 1;
        }
        Box::new(d)
    }
}

impl Program for DirServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type != sys::FS {
            return;
        }
        let Ok(m) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        let reply = msg.links.first();
        match m {
            FsMsg::DirCreate { tok, name } => {
                if self.names.contains_key(&name) {
                    reply_err(ctx, reply, 3);
                    return;
                }
                let fid = self.next_fid;
                self.next_fid += 1;
                self.names.insert(name, fid);
                if let Some(r) = reply {
                    let _ = ctx.send(*r, sys::FS, FsMsg::DirDone { tok, fid }.to_bytes(), &[]);
                }
            }
            FsMsg::DirLookup { tok, name } => match self.names.get(&name) {
                Some(&fid) => {
                    if let Some(r) = reply {
                        let _ = ctx.send(*r, sys::FS, FsMsg::DirDone { tok, fid }.to_bytes(), &[]);
                    }
                }
                None => reply_err(ctx, reply, 1),
            },
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.next_fid);
        b.put_u16(self.names.len() as u16);
        for (name, fid) in &self.names {
            wire::put_string(&mut b, name);
            b.put_u32(*fid);
        }
        b.to_vec()
    }
}

// ----------------------------------------------------------------------
// Disk server
// ----------------------------------------------------------------------

/// Block storage with simulated per-operation latency.
#[derive(Debug, Default)]
pub struct DiskServer {
    next_blk: u32,
    blocks: BTreeMap<u32, Vec<u8>>,
    /// Simulated seek+transfer time per operation, microseconds.
    pub op_us: u32,
    /// Operations served.
    pub ops: u64,
}

impl DiskServer {
    /// Program name in the registry.
    pub const NAME: &'static str = "fs_disk";

    /// Initial state with the given per-op latency.
    pub fn state(op_us: u32) -> Vec<u8> {
        DiskServer {
            next_blk: 1,
            op_us,
            ..Default::default()
        }
        .save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut d = DiskServer::default();
        if b.remaining() >= 16 {
            d.next_blk = b.get_u32();
            d.op_us = b.get_u32();
            d.ops = b.get_u64();
            let n = if b.remaining() >= 4 { b.get_u32() } else { 0 };
            for _ in 0..n {
                if b.remaining() < 4 {
                    break;
                }
                let blk = b.get_u32();
                let Ok(data) = wire::get_bytes(&mut b, "disk.block", BLOCK as usize) else {
                    break;
                };
                d.blocks.insert(blk, data.to_vec());
            }
        }
        if d.next_blk == 0 {
            d.next_blk = 1;
        }
        Box::new(d)
    }
}

impl Program for DiskServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type != sys::FS {
            return;
        }
        let Ok(m) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        let reply = msg.links.first();
        self.ops += 1;
        ctx.cpu(Duration::from_micros(self.op_us as u64));
        match m {
            FsMsg::BAlloc { tok } => {
                let blk = self.next_blk;
                self.next_blk += 1;
                self.blocks.insert(blk, vec![0u8; BLOCK as usize]);
                if let Some(r) = reply {
                    let _ = ctx.send(*r, sys::FS, FsMsg::BOk { tok, blk }.to_bytes(), &[]);
                }
            }
            FsMsg::BRead { tok, blk } => {
                let bytes = self
                    .blocks
                    .get(&blk)
                    .map(|v| Bytes::copy_from_slice(v))
                    .unwrap_or_else(|| Bytes::from(vec![0u8; BLOCK as usize]));
                if let Some(r) = reply {
                    let _ = ctx.send(
                        *r,
                        sys::FS,
                        FsMsg::BData { tok, blk, bytes }.to_bytes(),
                        &[],
                    );
                }
            }
            FsMsg::BWrite { tok, blk, bytes } => {
                let mut v = bytes.to_vec();
                v.resize(BLOCK as usize, 0);
                self.blocks.insert(blk, v);
                if let Some(r) = reply {
                    let _ = ctx.send(*r, sys::FS, FsMsg::BOk { tok, blk }.to_bytes(), &[]);
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.next_blk);
        b.put_u32(self.op_us);
        b.put_u64(self.ops);
        b.put_u32(self.blocks.len() as u32);
        for (blk, data) in &self.blocks {
            b.put_u32(*blk);
            wire::put_bytes(&mut b, data);
        }
        b.to_vec()
    }
}

// ----------------------------------------------------------------------
// Buffer cache
// ----------------------------------------------------------------------

/// Write-through LRU block cache between the file server and the disk.
#[derive(Debug, Default)]
pub struct BufferCache {
    /// Capacity in blocks.
    cap: u16,
    /// LRU list, most recent first.
    lru: Vec<(u32, Vec<u8>)>,
    /// Link to the disk server (0 until INIT).
    disk: u32,
    /// Pending pass-through requests: our token → (client token, client
    /// reply link index).
    pending: BTreeMap<u32, (u32, u32)>,
    next_tok: u32,
    /// Hits and misses.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl BufferCache {
    /// Program name in the registry.
    pub const NAME: &'static str = "fs_cache";

    /// Initial state with capacity `cap` blocks.
    pub fn state(cap: u16) -> Vec<u8> {
        BufferCache {
            cap,
            next_tok: 1,
            ..Default::default()
        }
        .save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut c = BufferCache::default();
        if b.remaining() >= 26 {
            c.cap = b.get_u16();
            c.disk = b.get_u32();
            c.next_tok = b.get_u32();
            c.hits = b.get_u64();
            c.misses = b.get_u64();
            let n_lru = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n_lru {
                if b.remaining() < 4 {
                    break;
                }
                let blk = b.get_u32();
                let Ok(data) = wire::get_bytes(&mut b, "cache.block", BLOCK as usize) else {
                    break;
                };
                c.lru.push((blk, data.to_vec()));
            }
            let n_p = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n_p {
                if b.remaining() < 12 {
                    break;
                }
                let tok = b.get_u32();
                let ctok = b.get_u32();
                let reply = b.get_u32();
                c.pending.insert(tok, (ctok, reply));
            }
        }
        if c.next_tok == 0 {
            c.next_tok = 1;
        }
        Box::new(c)
    }

    fn touch(&mut self, blk: u32, data: Vec<u8>) {
        self.lru.retain(|(b, _)| *b != blk);
        self.lru.insert(0, (blk, data));
        while self.lru.len() > self.cap as usize {
            self.lru.pop();
        }
    }

    fn get(&mut self, blk: u32) -> Option<Vec<u8>> {
        let pos = self.lru.iter().position(|(b, _)| *b == blk)?;
        let entry = self.lru.remove(pos);
        let data = entry.1.clone();
        self.lru.insert(0, entry);
        Some(data)
    }
}

impl Program for BufferCache {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            crate::wl_init::INIT => {
                if let Some(&disk) = msg.links.first() {
                    self.disk = disk.0;
                }
                return;
            }
            sys::FS => {}
            _ => return,
        }
        let Ok(m) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        match m {
            FsMsg::BRead { tok, blk } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                if let Some(data) = self.get(blk) {
                    self.hits += 1;
                    let _ = ctx.send(
                        reply,
                        sys::FS,
                        FsMsg::BData {
                            tok,
                            blk,
                            bytes: Bytes::from(data),
                        }
                        .to_bytes(),
                        &[],
                    );
                    return;
                }
                self.misses += 1;
                let Some(disk) = opt_link(self.disk) else {
                    reply_err(ctx, Some(&reply), 4);
                    return;
                };
                let my = self.next_tok;
                self.next_tok = self.next_tok.wrapping_add(1).max(1);
                self.pending.insert(my, (tok, reply.0));
                let _ = ctx.send(
                    disk,
                    sys::FS,
                    FsMsg::BRead { tok: my, blk }.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            FsMsg::BWrite { tok, blk, bytes } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                // Write-through: update cache, then the disk.
                self.touch(blk, {
                    let mut v = bytes.to_vec();
                    v.resize(BLOCK as usize, 0);
                    v
                });
                let Some(disk) = opt_link(self.disk) else {
                    reply_err(ctx, Some(&reply), 4);
                    return;
                };
                let my = self.next_tok;
                self.next_tok = self.next_tok.wrapping_add(1).max(1);
                self.pending.insert(my, (tok, reply.0));
                let _ = ctx.send(
                    disk,
                    sys::FS,
                    FsMsg::BWrite {
                        tok: my,
                        blk,
                        bytes,
                    }
                    .to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            FsMsg::BAlloc { tok } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                let Some(disk) = opt_link(self.disk) else {
                    reply_err(ctx, Some(&reply), 4);
                    return;
                };
                let my = self.next_tok;
                self.next_tok = self.next_tok.wrapping_add(1).max(1);
                self.pending.insert(my, (tok, reply.0));
                let _ = ctx.send(
                    disk,
                    sys::FS,
                    FsMsg::BAlloc { tok: my }.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            FsMsg::BData { tok, blk, bytes } => {
                // Reply from the disk for one of our pass-throughs.
                if let Some((ctok, reply)) = self.pending.remove(&tok) {
                    self.touch(blk, bytes.to_vec());
                    if let Some(r) = opt_link(reply) {
                        let _ = ctx.send(
                            r,
                            sys::FS,
                            FsMsg::BData {
                                tok: ctok,
                                blk,
                                bytes,
                            }
                            .to_bytes(),
                            &[],
                        );
                    }
                }
            }
            FsMsg::BOk { tok, blk } => {
                if let Some((ctok, reply)) = self.pending.remove(&tok) {
                    if let Some(r) = opt_link(reply) {
                        let _ = ctx.send(r, sys::FS, FsMsg::BOk { tok: ctok, blk }.to_bytes(), &[]);
                    }
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u16(self.cap);
        b.put_u32(self.disk);
        b.put_u32(self.next_tok);
        b.put_u64(self.hits);
        b.put_u64(self.misses);
        b.put_u16(self.lru.len() as u16);
        for (blk, data) in &self.lru {
            b.put_u32(*blk);
            wire::put_bytes(&mut b, data);
        }
        b.put_u16(self.pending.len() as u16);
        for (tok, (ctok, reply)) in &self.pending {
            b.put_u32(*tok);
            b.put_u32(*ctok);
            b.put_u32(*reply);
        }
        b.to_vec()
    }
}

// ----------------------------------------------------------------------
// File server
// ----------------------------------------------------------------------

/// Per-file metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FileMeta {
    len: u32,
    blocks: Vec<u32>,
}

/// An in-flight client operation at the file server.
#[derive(Debug, Clone)]
enum Pending {
    /// Waiting for the directory on a create.
    CreateWait { reply: u32 },
    /// Waiting for the directory on an open.
    OpenWait { reply: u32 },
    /// Waiting for a block read to satisfy a client read.
    ReadWait { reply: u32, skip: u32, take: u32 },
    /// Waiting for a block allocation before a write.
    WriteAlloc {
        reply: u32,
        fid: u32,
        off: u32,
        data: Vec<u8>,
    },
    /// Waiting for a block read to do read-modify-write.
    WriteRmw {
        reply: u32,
        fid: u32,
        off: u32,
        data: Vec<u8>,
        blk: u32,
    },
    /// Waiting for the final block write.
    WriteFlush { reply: u32, fid: u32, end: u32 },
}

/// The client-facing file server.
#[derive(Debug, Default)]
pub struct FileServer {
    files: BTreeMap<u32, FileMeta>,
    /// Link to the directory server (0 until INIT).
    dir: u32,
    /// Link to the buffer cache (0 until INIT).
    cache: u32,
    pending: BTreeMap<u32, Pending>,
    next_tok: u32,
    /// Client operations completed.
    pub ops: u64,
}

impl FileServer {
    /// Program name in the registry.
    pub const NAME: &'static str = "fs_file";

    /// Initial state.
    pub fn state() -> Vec<u8> {
        FileServer {
            next_tok: 1,
            ..Default::default()
        }
        .save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut f = FileServer::default();
        if b.remaining() >= 20 {
            f.dir = b.get_u32();
            f.cache = b.get_u32();
            f.next_tok = b.get_u32();
            f.ops = b.get_u64();
            let n_files = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n_files {
                if b.remaining() < 10 {
                    break;
                }
                let fid = b.get_u32();
                let len = b.get_u32();
                let nb = b.get_u16() as usize;
                let mut blocks = Vec::with_capacity(nb);
                for _ in 0..nb {
                    if b.remaining() < 4 {
                        break;
                    }
                    blocks.push(b.get_u32());
                }
                f.files.insert(fid, FileMeta { len, blocks });
            }
            let n_p = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n_p {
                if b.remaining() < 5 {
                    break;
                }
                let tok = b.get_u32();
                let kind = b.get_u8();
                let p = match kind {
                    1 => Pending::CreateWait { reply: b.get_u32() },
                    2 => Pending::OpenWait { reply: b.get_u32() },
                    3 => Pending::ReadWait {
                        reply: b.get_u32(),
                        skip: b.get_u32(),
                        take: b.get_u32(),
                    },
                    4 => {
                        let reply = b.get_u32();
                        let fid = b.get_u32();
                        let off = b.get_u32();
                        let data = wire::get_bytes(&mut b, "fs.pending", BLOCK as usize)
                            .map(|d| d.to_vec())
                            .unwrap_or_default();
                        Pending::WriteAlloc {
                            reply,
                            fid,
                            off,
                            data,
                        }
                    }
                    5 => {
                        let reply = b.get_u32();
                        let fid = b.get_u32();
                        let off = b.get_u32();
                        let blk = b.get_u32();
                        let data = wire::get_bytes(&mut b, "fs.pending", BLOCK as usize)
                            .map(|d| d.to_vec())
                            .unwrap_or_default();
                        Pending::WriteRmw {
                            reply,
                            fid,
                            off,
                            data,
                            blk,
                        }
                    }
                    _ => Pending::WriteFlush {
                        reply: b.get_u32(),
                        fid: b.get_u32(),
                        end: b.get_u32(),
                    },
                };
                f.pending.insert(tok, p);
            }
        }
        if f.next_tok == 0 {
            f.next_tok = 1;
        }
        Box::new(f)
    }

    fn tok(&mut self) -> u32 {
        let t = self.next_tok;
        self.next_tok = self.next_tok.wrapping_add(1).max(1);
        t
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_cache(&mut self, ctx: &mut Ctx<'_>, m: FsMsg) -> bool {
        match opt_link(self.cache) {
            Some(cache) => ctx
                .send(
                    cache,
                    sys::FS,
                    m.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                )
                .is_ok(),
            None => false,
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, reply: u32, m: FsMsg) {
        self.ops += 1;
        if let Some(r) = opt_link(reply) {
            let _ = ctx.send(r, sys::FS, m.to_bytes(), &[]);
        }
    }
}

impl Program for FileServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            crate::wl_init::INIT => {
                // links: [dir, cache]
                if let Some(&dir) = msg.links.first() {
                    self.dir = dir.0;
                }
                if let Some(&cache) = msg.links.get(1) {
                    self.cache = cache.0;
                }
                return;
            }
            sys::FS => {}
            _ => return,
        }
        let Ok(m) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        match m {
            // ---------------- client requests ----------------
            FsMsg::Create { name } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                let Some(dir) = opt_link(self.dir) else {
                    reply_err(ctx, Some(&reply), 4);
                    return;
                };
                let tok = self.tok();
                self.pending
                    .insert(tok, Pending::CreateWait { reply: reply.0 });
                let _ = ctx.send(
                    dir,
                    sys::FS,
                    FsMsg::DirCreate { tok, name }.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            FsMsg::Open { name } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                let Some(dir) = opt_link(self.dir) else {
                    reply_err(ctx, Some(&reply), 4);
                    return;
                };
                let tok = self.tok();
                self.pending
                    .insert(tok, Pending::OpenWait { reply: reply.0 });
                let _ = ctx.send(
                    dir,
                    sys::FS,
                    FsMsg::DirLookup { tok, name }.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            FsMsg::Read { fid, off, len } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                let Some(meta) = self.files.get(&fid) else {
                    reply_err(ctx, Some(&reply), 1);
                    return;
                };
                if off >= meta.len || len == 0 {
                    self.finish(
                        ctx,
                        reply.0,
                        FsMsg::Data {
                            bytes: Bytes::new(),
                        },
                    );
                    return;
                }
                let blk_i = (off / BLOCK) as usize;
                let Some(&blk) = meta.blocks.get(blk_i) else {
                    reply_err(ctx, Some(&reply), 2);
                    return;
                };
                let in_blk = off % BLOCK;
                let take = len.min(BLOCK - in_blk).min(meta.len - off);
                let tok = self.tok();
                self.pending.insert(
                    tok,
                    Pending::ReadWait {
                        reply: reply.0,
                        skip: in_blk,
                        take,
                    },
                );
                if !self.to_cache(ctx, FsMsg::BRead { tok, blk }) {
                    self.pending.remove(&tok);
                    reply_err(ctx, Some(&reply), 4);
                }
            }
            FsMsg::Write { fid, off, bytes } => {
                let Some(&reply) = msg.links.first() else {
                    return;
                };
                if bytes.is_empty() || bytes.len() as u32 > BLOCK {
                    reply_err(ctx, Some(&reply), 2);
                    return;
                }
                let end = off + bytes.len() as u32;
                if off / BLOCK != (end - 1) / BLOCK {
                    reply_err(ctx, Some(&reply), 2);
                    return;
                }
                let Some(meta) = self.files.get(&fid) else {
                    reply_err(ctx, Some(&reply), 1);
                    return;
                };
                let blk_i = (off / BLOCK) as usize;
                if blk_i > meta.blocks.len() {
                    reply_err(ctx, Some(&reply), 2);
                    return;
                }
                if blk_i == meta.blocks.len() {
                    // Need a fresh block first.
                    let tok = self.tok();
                    self.pending.insert(
                        tok,
                        Pending::WriteAlloc {
                            reply: reply.0,
                            fid,
                            off,
                            data: bytes.to_vec(),
                        },
                    );
                    if !self.to_cache(ctx, FsMsg::BAlloc { tok }) {
                        self.pending.remove(&tok);
                        reply_err(ctx, Some(&reply), 4);
                    }
                    return;
                }
                let blk = meta.blocks[blk_i];
                self.start_block_write(ctx, reply.0, fid, off, bytes.to_vec(), blk);
            }
            // ---------------- directory replies ----------------
            FsMsg::DirDone { tok, fid } => {
                let Some(p) = self.pending.remove(&tok) else {
                    return;
                };
                match p {
                    Pending::CreateWait { reply } => {
                        self.files.insert(fid, FileMeta::default());
                        self.finish(ctx, reply, FsMsg::Done { fid, len: 0 });
                    }
                    Pending::OpenWait { reply } => {
                        let len = self.files.entry(fid).or_default().len;
                        self.finish(ctx, reply, FsMsg::Done { fid, len });
                    }
                    other => {
                        self.pending.insert(tok, other);
                    }
                }
            }
            // ---------------- block-layer replies ----------------
            FsMsg::BData { tok, blk, bytes } => match self.pending.remove(&tok) {
                Some(Pending::ReadWait { reply, skip, take }) => {
                    let start = (skip as usize).min(bytes.len());
                    let end = (skip + take) as usize;
                    let end = end.min(bytes.len());
                    self.finish(
                        ctx,
                        reply,
                        FsMsg::Data {
                            bytes: bytes.slice(start..end),
                        },
                    );
                }
                Some(Pending::WriteRmw {
                    reply,
                    fid,
                    off,
                    data,
                    blk: wblk,
                }) => {
                    debug_assert_eq!(blk, wblk);
                    let mut block = bytes.to_vec();
                    block.resize(BLOCK as usize, 0);
                    let in_blk = (off % BLOCK) as usize;
                    block[in_blk..in_blk + data.len()].copy_from_slice(&data);
                    let end = off + data.len() as u32;
                    let tok2 = self.tok();
                    self.pending
                        .insert(tok2, Pending::WriteFlush { reply, fid, end });
                    if !self.to_cache(
                        ctx,
                        FsMsg::BWrite {
                            tok: tok2,
                            blk: wblk,
                            bytes: Bytes::from(block),
                        },
                    ) {
                        self.pending.remove(&tok2);
                    }
                }
                Some(other) => {
                    self.pending.insert(tok, other);
                }
                None => {}
            },
            FsMsg::BOk { tok, blk } => match self.pending.remove(&tok) {
                Some(Pending::WriteAlloc {
                    reply,
                    fid,
                    off,
                    data,
                }) => {
                    if let Some(meta) = self.files.get_mut(&fid) {
                        meta.blocks.push(blk);
                    }
                    self.start_block_write(ctx, reply, fid, off, data, blk);
                }
                Some(Pending::WriteFlush { reply, fid, end }) => {
                    let meta = self.files.entry(fid).or_default();
                    meta.len = meta.len.max(end);
                    self.finish(ctx, reply, FsMsg::Done { fid, len: end });
                }
                Some(other) => {
                    self.pending.insert(tok, other);
                }
                None => {}
            },
            FsMsg::Err { .. } => {
                // A downstream failure: fail the oldest directory wait (the
                // only requests that can receive a bare Err from below).
                let key = self
                    .pending
                    .iter()
                    .find(|(_, p)| {
                        matches!(p, Pending::CreateWait { .. } | Pending::OpenWait { .. })
                    })
                    .map(|(&k, _)| k);
                if let Some(Pending::CreateWait { reply } | Pending::OpenWait { reply }) =
                    key.and_then(|k| self.pending.remove(&k))
                {
                    self.finish(ctx, reply, FsMsg::Err { code: 1 });
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.dir);
        b.put_u32(self.cache);
        b.put_u32(self.next_tok);
        b.put_u64(self.ops);
        b.put_u16(self.files.len() as u16);
        for (fid, meta) in &self.files {
            b.put_u32(*fid);
            b.put_u32(meta.len);
            b.put_u16(meta.blocks.len() as u16);
            for blk in &meta.blocks {
                b.put_u32(*blk);
            }
        }
        b.put_u16(self.pending.len() as u16);
        for (tok, p) in &self.pending {
            b.put_u32(*tok);
            match p {
                Pending::CreateWait { reply } => {
                    b.put_u8(1);
                    b.put_u32(*reply);
                }
                Pending::OpenWait { reply } => {
                    b.put_u8(2);
                    b.put_u32(*reply);
                }
                Pending::ReadWait { reply, skip, take } => {
                    b.put_u8(3);
                    b.put_u32(*reply);
                    b.put_u32(*skip);
                    b.put_u32(*take);
                }
                Pending::WriteAlloc {
                    reply,
                    fid,
                    off,
                    data,
                } => {
                    b.put_u8(4);
                    b.put_u32(*reply);
                    b.put_u32(*fid);
                    b.put_u32(*off);
                    wire::put_bytes(&mut b, data);
                }
                Pending::WriteRmw {
                    reply,
                    fid,
                    off,
                    data,
                    blk,
                } => {
                    b.put_u8(5);
                    b.put_u32(*reply);
                    b.put_u32(*fid);
                    b.put_u32(*off);
                    b.put_u32(*blk);
                    wire::put_bytes(&mut b, data);
                }
                Pending::WriteFlush { reply, fid, end } => {
                    b.put_u8(6);
                    b.put_u32(*reply);
                    b.put_u32(*fid);
                    b.put_u32(*end);
                }
            }
        }
        b.to_vec()
    }
}

impl FileServer {
    fn start_block_write(
        &mut self,
        ctx: &mut Ctx<'_>,
        reply: u32,
        fid: u32,
        off: u32,
        data: Vec<u8>,
        blk: u32,
    ) {
        let end = off + data.len() as u32;
        if off.is_multiple_of(BLOCK) && data.len() as u32 == BLOCK {
            // Full-block write: no read needed.
            let tok = self.tok();
            self.pending
                .insert(tok, Pending::WriteFlush { reply, fid, end });
            if !self.to_cache(
                ctx,
                FsMsg::BWrite {
                    tok,
                    blk,
                    bytes: Bytes::from(data),
                },
            ) {
                self.pending.remove(&tok);
                if let Some(r) = opt_link(reply) {
                    let _ = ctx.send(r, sys::FS, FsMsg::Err { code: 4 }.to_bytes(), &[]);
                }
            }
        } else {
            // Partial write: read-modify-write.
            let tok = self.tok();
            self.pending.insert(
                tok,
                Pending::WriteRmw {
                    reply,
                    fid,
                    off,
                    data,
                    blk,
                },
            );
            if !self.to_cache(ctx, FsMsg::BRead { tok, blk }) {
                self.pending.remove(&tok);
                if let Some(r) = opt_link(reply) {
                    let _ = ctx.send(r, sys::FS, FsMsg::Err { code: 4 }.to_bytes(), &[]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_state_roundtrip() {
        let mut d = DirServer {
            names: BTreeMap::new(),
            next_fid: 5,
        };
        d.names.insert("a".into(), 1);
        d.names.insert("b".into(), 2);
        assert_eq!(DirServer::restore(&d.save()).save(), d.save());
    }

    #[test]
    fn disk_state_roundtrip() {
        let mut d = DiskServer {
            next_blk: 3,
            op_us: 2000,
            ops: 7,
            ..Default::default()
        };
        d.blocks.insert(1, vec![1u8; 512]);
        d.blocks.insert(2, vec![2u8; 512]);
        assert_eq!(DiskServer::restore(&d.save()).save(), d.save());
    }

    #[test]
    fn cache_state_roundtrip_and_lru() {
        let mut c = BufferCache {
            cap: 2,
            next_tok: 4,
            disk: 1,
            ..Default::default()
        };
        c.touch(1, vec![1; 512]);
        c.touch(2, vec![2; 512]);
        c.touch(3, vec![3; 512]);
        assert_eq!(c.lru.len(), 2, "capacity enforced");
        assert!(c.get(1).is_none(), "evicted");
        assert!(c.get(3).is_some());
        c.pending.insert(9, (1, 2));
        assert_eq!(BufferCache::restore(&c.save()).save(), c.save());
    }

    #[test]
    fn file_server_state_roundtrip() {
        let mut f = FileServer {
            dir: 1,
            cache: 2,
            next_tok: 9,
            ops: 3,
            ..Default::default()
        };
        f.files.insert(
            1,
            FileMeta {
                len: 700,
                blocks: vec![4, 5],
            },
        );
        f.pending.insert(
            7,
            Pending::ReadWait {
                reply: 3,
                skip: 10,
                take: 100,
            },
        );
        f.pending.insert(
            8,
            Pending::WriteRmw {
                reply: 4,
                fid: 1,
                off: 600,
                data: vec![9; 32],
                blk: 5,
            },
        );
        assert_eq!(FileServer::restore(&f.save()).save(), f.save());
    }
}
