//! A file-system client workload: the "several user processes …
//! performing I/O" of the paper's hardest migration test (§2.3).
//!
//! Timer-driven, one outstanding operation at a time: first creates its
//! files, then alternates reads and writes (per the configured read
//! ratio) at block-aligned offsets, recording latencies and errors.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, Program};
use demos_types::wire::Wire;
use demos_types::{Duration, LinkAttrs, LinkIdx};

use crate::fs::BLOCK;
use crate::proto::{sys, FsMsg};

/// INIT tag shared with the sim workload programs.
use crate::wl_init::INIT;

/// The client program.
#[derive(Debug, Default)]
pub struct FsClient {
    /// Link to the file server (0 until INIT).
    server: u32,
    /// Files this client owns.
    nfiles: u16,
    /// Files created so far.
    created: u16,
    /// File ids, in creation order.
    fids: Vec<u32>,
    /// Operations completed (after creation phase).
    pub ops: u64,
    /// Operation budget (0 = unlimited).
    limit: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Errors observed.
    pub errors: u64,
    /// Period between operations, microseconds.
    period_us: u32,
    /// Bytes per operation (≤ block size).
    op_bytes: u16,
    /// Percentage of operations that are reads.
    read_pct: u8,
    /// Virtual time the outstanding op was issued, microseconds.
    sent_at: u64,
    /// Latency sum/max, microseconds.
    pub lat_sum: u64,
    /// Worst latency.
    pub lat_max: u64,
    /// Unique name seed so several clients don't collide.
    seed: u32,
}

impl FsClient {
    /// Program name in the registry.
    pub const NAME: &'static str = "fs_client";

    /// Initial state.
    pub fn state(
        seed: u32,
        nfiles: u16,
        limit: u64,
        period_us: u32,
        op_bytes: u16,
        read_pct: u8,
    ) -> Vec<u8> {
        FsClient {
            nfiles,
            limit,
            period_us,
            op_bytes: op_bytes.min(BLOCK as u16),
            read_pct: read_pct.min(100),
            seed,
            ..Default::default()
        }
        .save()
    }

    /// Restore from serialized state.
    pub fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut c = FsClient::default();
        if b.remaining() >= 4 + 2 + 2 {
            c.server = b.get_u32();
            c.nfiles = b.get_u16();
            c.created = b.get_u16();
            c.ops = b.get_u64();
            c.limit = b.get_u64();
            c.reads = b.get_u64();
            c.writes = b.get_u64();
            c.errors = b.get_u64();
            c.period_us = b.get_u32();
            c.op_bytes = b.get_u16();
            c.read_pct = b.get_u8();
            c.sent_at = b.get_u64();
            c.lat_sum = b.get_u64();
            c.lat_max = b.get_u64();
            c.seed = b.get_u32();
            let n = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n {
                if b.remaining() < 4 {
                    break;
                }
                c.fids.push(b.get_u32());
            }
        }
        Box::new(c)
    }

    fn tick(&self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
    }

    fn done(&self) -> bool {
        self.limit != 0 && self.ops >= self.limit
    }

    fn record_latency(&mut self, now_us: u64) {
        let lat = now_us.saturating_sub(self.sent_at);
        self.lat_sum += lat;
        self.lat_max = self.lat_max.max(lat);
    }
}

impl Program for FsClient {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            INIT => {
                if let Some(&server) = msg.links.first() {
                    self.server = server.0;
                    self.tick(ctx);
                }
                return;
            }
            sys::FS => {}
            _ => return,
        }
        let Ok(m) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        match m {
            FsMsg::Done { fid, .. } if (self.created as usize) > self.fids.len() => {
                // Reply to a Create during the setup phase.
                self.fids.push(fid);
                self.tick(ctx);
            }
            FsMsg::Done { .. } => {
                // A write completed.
                self.ops += 1;
                self.writes += 1;
                self.record_latency(ctx.now().as_micros());
                if !self.done() {
                    self.tick(ctx);
                }
            }
            FsMsg::Data { .. } => {
                self.ops += 1;
                self.reads += 1;
                self.record_latency(ctx.now().as_micros());
                if !self.done() {
                    self.tick(ctx);
                }
            }
            FsMsg::Err { .. } => {
                self.errors += 1;
                self.ops += 1;
                if !self.done() {
                    self.tick(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(server) = (self.server != 0).then_some(LinkIdx(self.server)) else {
            return;
        };
        if (self.created as usize) < self.nfiles as usize {
            // Setup: create the next file.
            let name = format!("c{}f{}", self.seed, self.created);
            self.created += 1;
            self.sent_at = ctx.now().as_micros();
            let _ = ctx.send(
                server,
                sys::FS,
                FsMsg::Create { name }.to_bytes(),
                &[Carry::New(LinkAttrs::REPLY)],
            );
            return;
        }
        if self.fids.is_empty() || self.done() {
            return;
        }
        // Steady state: alternate reads and writes across files.
        let k = self.ops;
        let fid = self.fids[(k % self.fids.len() as u64) as usize];
        let slots = (BLOCK / self.op_bytes.max(1) as u32).max(1);
        let off = ((k * 31) % slots as u64) as u32 * self.op_bytes as u32;
        self.sent_at = ctx.now().as_micros();
        if (k % 100) < (self.read_pct as u64) {
            let _ = ctx.send(
                server,
                sys::FS,
                FsMsg::Read {
                    fid,
                    off,
                    len: self.op_bytes as u32,
                }
                .to_bytes(),
                &[Carry::New(LinkAttrs::REPLY)],
            );
        } else {
            let pattern = vec![(k % 251) as u8; self.op_bytes as usize];
            let _ = ctx.send(
                server,
                sys::FS,
                FsMsg::Write {
                    fid,
                    off,
                    bytes: Bytes::from(pattern),
                }
                .to_bytes(),
                &[Carry::New(LinkAttrs::REPLY)],
            );
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.server);
        b.put_u16(self.nfiles);
        b.put_u16(self.created);
        b.put_u64(self.ops);
        b.put_u64(self.limit);
        b.put_u64(self.reads);
        b.put_u64(self.writes);
        b.put_u64(self.errors);
        b.put_u32(self.period_us);
        b.put_u16(self.op_bytes);
        b.put_u8(self.read_pct);
        b.put_u64(self.sent_at);
        b.put_u64(self.lat_sum);
        b.put_u64(self.lat_max);
        b.put_u32(self.seed);
        b.put_u16(self.fids.len() as u16);
        for fid in &self.fids {
            b.put_u32(*fid);
        }
        b.to_vec()
    }
}

/// Parsed client statistics, extracted from a state blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsClientStats {
    /// Operations completed.
    pub ops: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Errors observed.
    pub errors: u64,
    /// Mean operation latency, microseconds.
    pub lat_mean_us: u64,
    /// Worst operation latency, microseconds.
    pub lat_max_us: u64,
}

/// Parse an `FsClient` state blob.
pub fn fs_client_stats(state: &[u8]) -> FsClientStats {
    let mut b = Bytes::copy_from_slice(state);
    // server(4) nfiles(2) created(2)
    if b.remaining() < 8 {
        return FsClientStats {
            ops: 0,
            reads: 0,
            writes: 0,
            errors: 0,
            lat_mean_us: 0,
            lat_max_us: 0,
        };
    }
    b.advance(8);
    let ops = b.get_u64();
    let _limit = b.get_u64();
    let reads = b.get_u64();
    let writes = b.get_u64();
    let errors = b.get_u64();
    b.advance(4 + 2 + 1 + 8);
    let lat_sum = b.get_u64();
    let lat_max = b.get_u64();
    FsClientStats {
        ops,
        reads,
        writes,
        errors,
        lat_mean_us: if ops == 0 { 0 } else { lat_sum / ops.max(1) },
        lat_max_us: lat_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        let c = FsClient {
            server: 1,
            nfiles: 2,
            created: 2,
            fids: vec![4, 9],
            ops: 17,
            reads: 8,
            writes: 9,
            lat_sum: 1000,
            lat_max: 200,
            ..Default::default()
        };
        let back = FsClient::restore(&c.save());
        assert_eq!(back.save(), c.save());
    }

    #[test]
    fn stats_parse() {
        let c = FsClient {
            ops: 10,
            reads: 4,
            writes: 6,
            lat_sum: 1000,
            lat_max: 300,
            ..Default::default()
        };
        let s = fs_client_stats(&c.save());
        assert_eq!(s.ops, 10);
        assert_eq!(s.reads, 4);
        assert_eq!(s.lat_mean_us, 100);
        assert_eq!(s.lat_max_us, 300);
    }
}
