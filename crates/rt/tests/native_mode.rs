//! Native-mode tests: the same kernels and migration engine as the
//! simulator, on real OS threads with real races. Mirrors the scenarios
//! of `crates/sim/tests/migration_e2e.rs` in wall-clock time.

use demos_kernel::{ImageLayout, KernelConfig, Registry};
use demos_rt::NativeCluster;
use demos_types::{Duration as VDuration, LinkAttrs, MachineId, ProcessId};
use std::time::Duration;

// The workload programs live in demos-sim, which depends on the sim loop;
// to keep demos-rt substrate-only, tests register a local program.
struct Pinger {
    rallies: u64,
    peer: u32,
}

impl demos_kernel::Program for Pinger {
    fn on_message(&mut self, ctx: &mut demos_kernel::Ctx<'_>, msg: demos_kernel::Delivered) {
        const INIT: u16 = demos_types::tags::USER_BASE;
        const BALL: u16 = demos_types::tags::USER_BASE + 1;
        match msg.msg_type {
            INIT => {
                if let Some(&peer) = msg.links.first() {
                    self.peer = peer.0;
                    if msg.payload.first() == Some(&1) {
                        let _ = ctx.send(peer, BALL, bytes::Bytes::new(), &[]);
                    }
                }
            }
            BALL => {
                self.rallies += 1;
                ctx.cpu(VDuration::from_micros(10));
                if self.peer != 0 {
                    let _ = ctx.send(
                        demos_types::LinkIdx(self.peer),
                        BALL,
                        bytes::Bytes::new(),
                        &[],
                    );
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut v = self.rallies.to_be_bytes().to_vec();
        v.extend_from_slice(&self.peer.to_be_bytes());
        v
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register("pinger", |state| {
        let mut rallies = [0u8; 8];
        let mut peer = [0u8; 4];
        if state.len() >= 12 {
            rallies.copy_from_slice(&state[..8]);
            peer.copy_from_slice(&state[8..12]);
        }
        Box::new(Pinger {
            rallies: u64::from_be_bytes(rallies),
            peer: u32::from_be_bytes(peer),
        })
    });
    r
}

fn rallies_of(state: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&state[..8]);
    u64::from_be_bytes(b)
}

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn wait_until<F: FnMut() -> bool>(mut pred: F, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn native_pingpong_and_live_migration() {
    let cluster = NativeCluster::new(
        3,
        registry(),
        KernelConfig::default(),
        demos_core::MigrationConfig::default(),
    );
    let pa = cluster
        .spawn(m(0), "pinger", &[0u8; 12], ImageLayout::default())
        .unwrap();
    let pb = cluster
        .spawn(m(1), "pinger", &[0u8; 12], ImageLayout::default())
        .unwrap();
    // Wire them with real links, then serve the first ball.
    let la = demos_types::Link {
        addr: pa.at(m(0)),
        attrs: LinkAttrs::NONE,
        area: None,
    };
    let lb = demos_types::Link {
        addr: pb.at(m(1)),
        attrs: LinkAttrs::NONE,
        area: None,
    };
    const INIT: u16 = demos_types::tags::USER_BASE;
    // Bootstrap the passive end first: in native mode the serve's first
    // ball genuinely races the second INIT command (a real race the
    // deterministic simulator cannot produce).
    cluster
        .post(m(1), pb, INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    cluster
        .post(m(0), pa, INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();

    // The rally runs on real threads.
    assert!(
        wait_until(
            || cluster
                .query_state(m(0), pa)
                .unwrap()
                .is_some_and(|s| rallies_of(&s) > 50),
            Duration::from_secs(10),
        ),
        "rally reached 50 on real threads"
    );

    // Live migration m1 → m2 while balls fly.
    cluster.migrate(m(1), pb, m(2)).unwrap();
    assert!(
        wait_until(
            || cluster.where_is(pb) == Some(m(2)),
            Duration::from_secs(10)
        ),
        "pb moved to m2"
    );
    // The rally continues after migration.
    let r1 = rallies_of(&cluster.query_state(m(0), pa).unwrap().unwrap());
    assert!(
        wait_until(
            || {
                cluster
                    .query_state(m(0), pa)
                    .unwrap()
                    .is_some_and(|s| rallies_of(&s) > r1 + 25)
            },
            Duration::from_secs(10),
        ),
        "rally continued transparently after native-mode migration"
    );
    // Forwarding really happened on the old home.
    let (stats_m1, _) = cluster.stats(m(1)).unwrap();
    assert!(
        stats_m1.forwarded >= 1,
        "m1 forwarded at least one stale ball"
    );
    cluster.shutdown();
}

#[test]
fn native_migration_chain() {
    let cluster = NativeCluster::new(
        4,
        registry(),
        KernelConfig::default(),
        demos_core::MigrationConfig::default(),
    );
    let pid = cluster
        .spawn(m(0), "pinger", &[0u8; 12], ImageLayout::default())
        .unwrap();
    let mut here = m(0);
    for dest in [1u16, 2, 3] {
        cluster.migrate(here, pid, m(dest)).unwrap();
        assert!(
            wait_until(
                || cluster.where_is(pid) == Some(m(dest)),
                Duration::from_secs(10)
            ),
            "hop to m{dest}"
        );
        here = m(dest);
    }
    cluster.shutdown();
}

#[test]
fn native_spawn_errors_propagate() {
    let cluster = NativeCluster::new(
        1,
        registry(),
        KernelConfig::default(),
        demos_core::MigrationConfig::default(),
    );
    assert!(cluster
        .spawn(m(0), "no_such_program", &[], ImageLayout::default())
        .is_err());
    let ghost = ProcessId {
        creating_machine: m(0),
        local_uid: 99,
    };
    assert!(cluster.migrate(m(0), ghost, m(0)).is_err());
    cluster.shutdown();
}
