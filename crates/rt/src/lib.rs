//! Native-mode runtime.
//!
//! The original system ran in two modes: "DEMOS/MP is currently in
//! operation on a network of Z8000 microprocessors, as well as in
//! simulation mode on a DEC VAX running UNIX. … essentially the same
//! software runs on both systems" (§2). This crate is our analogue of the
//! native mode: each machine's [`demos_core::Node`] — the *same* kernel
//! and migration engine the deterministic simulator drives — runs on its
//! own OS thread, with crossbeam channels standing in for the
//! interconnect and wall-clock time for the virtual clock.
//!
//! Native mode trades the simulator's determinism for real concurrency:
//! frames genuinely race, threads genuinely interleave. The integration
//! tests run the same scenarios in both modes, which is exactly how the
//! original project shook out its bugs ("software can be built and tested
//! using UNIX and subsequently compiled and run in native mode").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use demos_core::{MigrationConfig, Node};
use demos_kernel::{ImageLayout, KernelConfig, KernelStats, Outbox, Registry};
use demos_net::{Frame, Phys};
use demos_types::{
    DemosError, Link, MachineId, Message, MsgFlags, MsgHeader, ProcessId, Result, Time,
};

/// A frame in flight between machine threads.
type Wire = (MachineId, Frame);

/// The per-thread physical layer: a channel to every peer.
struct ChannelPhys {
    txs: Vec<Sender<Wire>>,
}

impl Phys for ChannelPhys {
    fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
        if let Some(tx) = self.txs.get(dst.0 as usize) {
            // A closed peer (shut down) just drops frames, like a crash.
            let _ = tx.send((src, frame));
        }
    }
}

/// Control-plane commands into a machine thread.
enum Cmd {
    Spawn {
        name: String,
        state: Vec<u8>,
        layout: ImageLayout,
        privileged: bool,
        reply: Sender<Result<ProcessId>>,
    },
    InstallLink {
        pid: ProcessId,
        link: Link,
        reply: Sender<Result<()>>,
    },
    Post {
        msg: Message,
        reply: Sender<()>,
    },
    Migrate {
        pid: ProcessId,
        dest: MachineId,
        reply: Sender<Result<()>>,
    },
    QueryState {
        pid: ProcessId,
        reply: Sender<Option<Vec<u8>>>,
    },
    QueryStats {
        reply: Sender<(KernelStats, usize)>,
    },
    Shutdown,
}

fn spin(node: &mut Node, now: Time, phys: &mut ChannelPhys, out: &mut Outbox) {
    // Run the machine to idle: deliver CPU to every runnable activation.
    while node.has_runnable() {
        if node.run_next(now, phys, out).is_none() {
            break;
        }
    }
    out.trace.clear();
}

fn machine_main(
    mut node: Node,
    epoch: Instant,
    inbox: Receiver<Wire>,
    cmds: Receiver<Cmd>,
    mut phys: ChannelPhys,
) {
    let mut out = Outbox::default();
    let now = |epoch: Instant| Time::from_micros(epoch.elapsed().as_micros() as u64);
    loop {
        let t = now(epoch);
        // Fire due deadlines, run to idle.
        if node.next_timer_at().is_some_and(|d| d <= t) {
            node.on_time(t, &mut phys, &mut out);
        }
        spin(&mut node, t, &mut phys, &mut out);
        // Sleep until the next deadline or an event.
        let wait = node
            .next_timer_at()
            .map(|d| {
                std::time::Duration::from_micros(
                    d.as_micros()
                        .saturating_sub(now(epoch).as_micros())
                        .clamp(50, 5_000),
                )
            })
            .unwrap_or(std::time::Duration::from_millis(5));
        crossbeam::channel::select! {
            recv(inbox) -> f => {
                if let Ok((src, frame)) = f {
                    let t = now(epoch);
                    node.on_frame(t, src, frame, &mut phys, &mut out);
                    // Drain any burst that arrived together.
                    while let Ok((src, frame)) = inbox.try_recv() {
                        node.on_frame(t, src, frame, &mut phys, &mut out);
                    }
                }
            }
            recv(cmds) -> c => {
                let t = now(epoch);
                match c {
                    Ok(Cmd::Spawn { name, state, layout, privileged, reply }) => {
                        let r = node.kernel.spawn(t, &name, &state, layout, privileged, &mut out);
                        let _ = reply.send(r);
                    }
                    Ok(Cmd::InstallLink { pid, link, reply }) => {
                        let _ = reply.send(node.kernel.install_link(pid, link).map(drop));
                    }
                    Ok(Cmd::Post { msg, reply }) => {
                        node.submit(t, msg, &mut phys, &mut out);
                        let _ = reply.send(());
                    }
                    Ok(Cmd::Migrate { pid, dest, reply }) => {
                        let _ = reply.send(node.migrate(t, pid, dest, None, &mut phys, &mut out));
                    }
                    Ok(Cmd::QueryState { pid, reply }) => {
                        let state = node
                            .kernel
                            .process(pid)
                            .and_then(|p| p.program.as_ref().map(|q| q.save()));
                        let _ = reply.send(state);
                    }
                    Ok(Cmd::QueryStats { reply }) => {
                        let _ = reply.send((node.kernel.stats(), node.kernel.nprocs()));
                    }
                    Ok(Cmd::Shutdown) | Err(_) => return,
                }
            }
            default(wait) => {}
        }
    }
}

/// A cluster of machine threads — native mode.
pub struct NativeCluster {
    cmd_txs: Vec<Sender<Cmd>>,
    threads: Vec<JoinHandle<()>>,
    n: usize,
}

impl NativeCluster {
    /// Spin up `n` machines running on real threads.
    pub fn new(n: usize, registry: Registry, kcfg: KernelConfig, mcfg: MigrationConfig) -> Self {
        let registry = registry.into_shared();
        // lint:allow(D002 the native runtime's whole purpose is to map virtual time onto the real wall clock; its epoch is the one sanctioned read)
        let epoch = Instant::now();
        let mut frame_txs = Vec::with_capacity(n);
        let mut frame_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Wire>();
            frame_txs.push(tx);
            frame_rxs.push(rx);
        }
        let mut cmd_txs = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        for (i, inbox) in frame_rxs.into_iter().enumerate() {
            let (ctx, crx) = unbounded::<Cmd>();
            cmd_txs.push(ctx);
            let node = Node::new(MachineId(i as u16), kcfg, mcfg, Arc::clone(&registry));
            let phys = ChannelPhys {
                txs: frame_txs.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("demos-m{i}"))
                .spawn(move || machine_main(node, epoch, inbox, crx, phys))
                .expect("spawn machine thread");
            threads.push(handle);
        }
        NativeCluster {
            cmd_txs,
            threads,
            n,
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn cmd<T>(&self, m: MachineId, build: impl FnOnce(Sender<T>) -> Cmd) -> Result<T> {
        let (tx, rx) = bounded(1);
        self.cmd_txs
            .get(m.0 as usize)
            .ok_or(DemosError::NoSuchMachine(m))?
            .send(build(tx))
            .map_err(|_| DemosError::NoSuchMachine(m))?;
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .map_err(|_| DemosError::Internal("machine thread unresponsive"))
    }

    /// Spawn a process on machine `m`.
    pub fn spawn(
        &self,
        m: MachineId,
        name: &str,
        state: &[u8],
        layout: ImageLayout,
    ) -> Result<ProcessId> {
        self.cmd(m, |reply| Cmd::Spawn {
            name: name.to_string(),
            state: state.to_vec(),
            layout,
            privileged: false,
            reply,
        })?
    }

    /// Install a link into a process's table (bootstrap).
    pub fn install_link(&self, m: MachineId, pid: ProcessId, link: Link) -> Result<()> {
        self.cmd(m, |reply| Cmd::InstallLink { pid, link, reply })?
    }

    /// Deliver a message to `pid` believed to be on machine `hint`.
    pub fn post(
        &self,
        hint: MachineId,
        pid: ProcessId,
        msg_type: u16,
        payload: impl Into<bytes::Bytes>,
        links: Vec<Link>,
    ) -> Result<()> {
        let msg = Message {
            header: MsgHeader {
                dest: pid.at(hint),
                src: ProcessId::kernel_of(hint),
                src_machine: hint,
                msg_type,
                flags: MsgFlags::FROM_KERNEL,
                hops: 0,
            },
            links,
            payload: payload.into(),
            corr: demos_types::CorrId::NONE,
        };
        self.cmd(hint, |reply| Cmd::Post { msg, reply })
    }

    /// Start migrating `pid` (currently on `src`) to `dest`.
    pub fn migrate(&self, src: MachineId, pid: ProcessId, dest: MachineId) -> Result<()> {
        self.cmd(src, |reply| Cmd::Migrate { pid, dest, reply })?
    }

    /// Fetch a process's serialized program state from machine `m`, if it
    /// is there.
    pub fn query_state(&self, m: MachineId, pid: ProcessId) -> Result<Option<Vec<u8>>> {
        self.cmd(m, |reply| Cmd::QueryState { pid, reply })
    }

    /// Which machine hosts `pid` right now (polls every machine)?
    pub fn where_is(&self, pid: ProcessId) -> Option<MachineId> {
        (0..self.n as u16)
            .map(MachineId)
            .find(|&m| matches!(self.query_state(m, pid), Ok(Some(_))))
    }

    /// Kernel statistics and process count for machine `m`.
    pub fn stats(&self, m: MachineId) -> Result<(KernelStats, usize)> {
        self.cmd(m, |reply| Cmd::QueryStats { reply })
    }

    /// Stop every machine thread and join them.
    pub fn shutdown(self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for NativeCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeCluster")
            .field("machines", &self.n)
            .finish()
    }
}
