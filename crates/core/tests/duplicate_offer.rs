//! The duplicate-offer reservation leak, pinned at the engine level.
//!
//! Found by `demos-lint` D007 (protocol-flow completeness): wiring the
//! never-constructed `RejectReason::Protocol` variant exposed that
//! `on_offer` accepted a second offer reusing a live `(source, context)`
//! pair. The engine overwrote its in-flight incoming entry, orphaning the
//! first offer's kernel reservation — `mem_used` grew by a full image and
//! could never be released, and the paired slot id leaked until machine
//! reboot. Contexts are 16-bit per-source counters, so a long-lived
//! cluster wraps them, and a buggy or byzantine peer can replay one at
//! will — the destination must defend itself.

use std::sync::Arc;

use demos_core::{MigrationConfig, MigrationEngine};
use demos_kernel::{Kernel, KernelConfig, Outbox, Registry};
use demos_net::{Frame, Phys};
use demos_types::proto::MigrateMsg;
use demos_types::wire::Wire;
use demos_types::{
    tags, CorrId, MachineId, Message, MsgFlags, MsgHeader, ProcessAddress, ProcessId, Time,
};

/// Physical layer that swallows frames (the reject path is asserted via
/// engine/kernel state, not the wire).
#[derive(Default)]
struct Sink;

impl Phys for Sink {
    fn transmit(&mut self, _now: Time, _src: MachineId, _dst: MachineId, _frame: Frame) {}
}

fn offer_msg(src: MachineId, dest: MachineId, ctx: u16, pid: ProcessId, image_len: u32) -> Message {
    let payload = MigrateMsg::Offer {
        ctx,
        pid,
        resident_len: 250,
        swappable_len: 600,
        image_len,
    }
    .to_bytes();
    Message {
        header: MsgHeader {
            dest: ProcessAddress::kernel_of(dest),
            src: ProcessId::kernel_of(src),
            src_machine: src,
            msg_type: tags::MIGRATE,
            flags: MsgFlags::FROM_KERNEL,
            hops: 0,
        },
        links: vec![],
        payload,
        corr: CorrId::NONE,
    }
}

#[test]
fn duplicate_context_offer_is_rejected_and_leaks_nothing() {
    let src = MachineId(0);
    let dest = MachineId(1);
    let mut kernel = Kernel::new(dest, KernelConfig::default(), Arc::new(Registry::new()));
    let mut engine = MigrationEngine::new(dest, MigrationConfig::default());
    let mut phys = Sink;
    let mut out = Outbox::default();
    let now = Time::ZERO;

    let pid_a = ProcessId {
        creating_machine: src,
        local_uid: 7,
    };
    let pid_b = ProcessId {
        creating_machine: src,
        local_uid: 8,
    };

    // First offer on (src, ctx=1): accepted, capacity reserved.
    engine.handle(
        now,
        &mut kernel,
        offer_msg(src, dest, 1, pid_a, 4096),
        &mut phys,
        &mut out,
    );
    assert_eq!(engine.in_flight(), 1, "first offer must reserve");
    let reserved = kernel.mem_used();
    assert_eq!(reserved, 4096, "reservation counts against memory");

    // A second offer reusing the live (src, ctx=1) pair — different pid,
    // as a wrapped counter or replaying peer would produce. The engine
    // used to overwrite the in-flight entry and strand the first
    // reservation; it must reject with RejectReason::Protocol instead.
    engine.handle(
        now,
        &mut kernel,
        offer_msg(src, dest, 1, pid_b, 4096),
        &mut phys,
        &mut out,
    );
    assert_eq!(engine.stats().rejected, 1, "duplicate must be rejected");
    assert_eq!(
        engine.in_flight(),
        1,
        "the original in-flight migration must survive the duplicate"
    );
    assert_eq!(
        kernel.mem_used(),
        reserved,
        "the duplicate must not reserve (or leak) any capacity"
    );

    // A *fresh* context from the same source is normal protocol traffic.
    engine.handle(
        now,
        &mut kernel,
        offer_msg(src, dest, 2, pid_b, 4096),
        &mut phys,
        &mut out,
    );
    assert_eq!(engine.in_flight(), 2, "fresh context must be accepted");
    assert_eq!(kernel.mem_used(), 2 * 4096);
    assert_eq!(engine.stats().rejected, 1, "no spurious rejects");
}
