//! The migration engine: the eight-step protocol of §3.1.
//!
//! One engine instance runs beside each kernel. The *source* side freezes
//! the process, offers it, serves the destination's state pulls (done by
//! the kernel's move-data machinery), then forwards pending messages and
//! leaves the forwarding address. The *destination* side — which "controls
//! the next part of the migration, up to the forwarding of messages"
//! (§3.1 step 2) — reserves resources, pulls the three state blobs
//! (resident, swappable, image: the three data moves of §6), installs the
//! process, and restarts it after the source confirms cleanup.
//!
//! The administrative messages are exactly the nine of DESIGN.md:
//! `MigrateRequest` (a `DELIVERTOKERNEL` control op), `Offer`,
//! `Accept`/`Reject`, three `ReadReq`s, `TransferComplete`, `CleanupDone`
//! and `Done`.
//!
//! Autonomy (§3.2) enters through [`AcceptPolicy`]: "the destination
//! machine may simply refuse to accept any migrations not fitting its
//! criteria". Timeouts abort half-done migrations and thaw the process at
//! the source, so a crashed destination cannot wedge a process forever.

use std::collections::BTreeMap;

use demos_kernel::{Kernel, MigrationPhase, Outbox, TraceEvent};
use demos_net::Phys;
use demos_types::proto::{AreaSel, KernelOp, MigrateMsg, RejectReason};
use demos_types::wire::Wire;
use demos_types::{DemosError, Duration, Link, MachineId, Message, ProcessId, Result, Time};

/// Destination-side acceptance policy (§3.2).
#[derive(Clone, Copy, Debug)]
pub enum AcceptPolicy {
    /// Accept whenever capacity allows (the paper's trusting kernels).
    Always,
    /// Refuse all incoming migrations (a closed administrative domain).
    Never,
    /// Custom predicate over the offer, e.g. a suspicious domain's
    /// admission filter.
    Custom(fn(&OfferInfo) -> bool),
}

/// What a destination sees when deciding on an offer.
#[derive(Clone, Copy, Debug)]
pub struct OfferInfo {
    /// The process being offered.
    pub pid: ProcessId,
    /// Source machine.
    pub src: MachineId,
    /// The deciding (destination) machine — lets one policy function
    /// implement per-domain criteria (§3.2).
    pub dest: MachineId,
    /// Resident-state bytes.
    pub resident_len: u16,
    /// Swappable-state bytes.
    pub swappable_len: u16,
    /// Image bytes.
    pub image_len: u32,
}

/// Engine tuning.
#[derive(Clone, Copy, Debug)]
pub struct MigrationConfig {
    /// Destination acceptance policy.
    pub accept: AcceptPolicy,
    /// Abort an in-flight migration after this long without completion.
    pub timeout: Duration,
    /// After an outgoing migration aborts mid-transfer, re-offer the
    /// process to an alternate destination at most this many times
    /// (0 disables retries). Candidates come from
    /// [`MigrationEngine::set_peers`].
    pub retries: u32,
    /// Delay before the first retry; doubles per attempt (bounded
    /// exponential backoff).
    pub retry_backoff: Duration,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            accept: AcceptPolicy::Always,
            timeout: Duration::from_secs(30),
            retries: 0,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Counters for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Migrations initiated at this machine (as source).
    pub started: u64,
    /// Migrations completed with this machine as source.
    pub completed_out: u64,
    /// Migrations completed with this machine as destination.
    pub completed_in: u64,
    /// Offers rejected by this machine.
    pub rejected: u64,
    /// Migrations aborted (timeout or failure), either side.
    pub aborted: u64,
    /// Outgoing offers rejected by the peer, by reason:
    /// `[Capacity, Policy, DuplicatePid, Protocol]` in wire-tag order.
    pub rejected_by_reason: [u64; 4],
    /// Pending messages forwarded during step 6 here.
    pub pending_forwarded: u64,
    /// Total state+image bytes received by this machine as destination.
    pub bytes_received: u64,
    /// Virtual time spent by completed incoming migrations, summed
    /// (freeze-to-restart is measured by the harness from traces; this is
    /// offer-to-restart at the destination).
    pub total_in_duration: Duration,
    /// Aborted outgoing migrations re-offered to an alternate destination.
    pub retried: u64,
}

/// Transfer stage of an incoming migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Resident,
    Swappable,
    Image,
}

/// Source-side record of an outgoing migration.
#[derive(Debug)]
struct SourceMig {
    pid: ProcessId,
    dest: MachineId,
    started: Time,
    /// Reply link from the `MigrateRequest`, forwarded inside the offer so
    /// the destination can send `Done` (message #9).
    reply: Option<Link>,
    accepted: bool,
}

/// Destination-side record of an incoming migration.
#[derive(Debug)]
struct DestMig {
    pid: ProcessId,
    src: MachineId,
    src_ctx: u16,
    slot: u16,
    started: Time,
    reply: Option<Link>,
    stage: Stage,
    resident: Vec<u8>,
    swappable: Vec<u8>,
    received: u64,
    installed: bool,
}

/// Retry bookkeeping for one process whose outgoing migration aborted.
#[derive(Debug)]
struct Retry {
    /// Retries already launched for this process.
    attempts: u32,
    /// A scheduled re-offer: fire time, alternate destination, reply link.
    pending: Option<(Time, MachineId, Option<Link>)>,
}

/// The per-machine migration engine.
#[derive(Debug)]
pub struct MigrationEngine {
    machine: MachineId,
    cfg: MigrationConfig,
    next_ctx: u16,
    outgoing: BTreeMap<u16, SourceMig>,
    incoming: BTreeMap<(MachineId, u16), DestMig>,
    /// Alternate-destination candidates for retries (set by the harness).
    peers: Vec<MachineId>,
    /// Aborted outgoing migrations awaiting (or between) re-offers.
    retries: BTreeMap<ProcessId, Retry>,
    stats: MigrationStats,
}

/// Cookie layout for kernel pulls: src machine ≪ 32 | ctx ≪ 8 | stage.
fn cookie(src: MachineId, ctx: u16, stage: Stage) -> u64 {
    ((src.0 as u64) << 32)
        | ((ctx as u64) << 8)
        | match stage {
            Stage::Resident => 0,
            Stage::Swappable => 1,
            Stage::Image => 2,
        }
}

fn uncookie(c: u64) -> (MachineId, u16, Stage) {
    let stage = match c & 0xff {
        0 => Stage::Resident,
        1 => Stage::Swappable,
        _ => Stage::Image,
    };
    (
        MachineId((c >> 32) as u16),
        ((c >> 8) & 0xffff) as u16,
        stage,
    )
}

impl MigrationEngine {
    /// New engine for `machine`.
    pub fn new(machine: MachineId, cfg: MigrationConfig) -> Self {
        MigrationEngine {
            machine,
            cfg,
            next_ctx: 1,
            outgoing: BTreeMap::new(),
            incoming: BTreeMap::new(),
            peers: Vec::new(),
            retries: BTreeMap::new(),
            stats: MigrationStats::default(),
        }
    }

    /// Provide the set of machines usable as alternate destinations when
    /// an aborted migration is retried (self and the failed destination
    /// are skipped automatically).
    pub fn set_peers(&mut self, peers: Vec<MachineId>) {
        self.peers = peers;
    }

    /// Counters.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// The alternate destination for a retry: the next candidate after
    /// `failed` in cyclic peer order, never self; falls back to `failed`
    /// itself when no other candidate exists.
    fn alternate_dest(&self, failed: MachineId) -> MachineId {
        let cands: Vec<MachineId> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| p != self.machine)
            .collect();
        match cands.iter().position(|&p| p == failed) {
            Some(i) if cands.len() > 1 => cands[(i + 1) % cands.len()],
            Some(_) => failed,
            None => cands.first().copied().unwrap_or(failed),
        }
    }

    /// An outgoing migration of `pid` to `dest` aborted: schedule a
    /// bounded backoff re-offer to an alternate destination, if the
    /// configured retry budget allows. Returns whether a retry was
    /// scheduled (in which case the requester is not yet notified of
    /// failure — it will hear `Done` from whichever attempt settles it).
    fn schedule_retry(
        &mut self,
        now: Time,
        pid: ProcessId,
        dest: MachineId,
        reply: Option<Link>,
    ) -> bool {
        if self.cfg.retries == 0 {
            return false;
        }
        let attempts = self.retries.get(&pid).map_or(0, |r| r.attempts);
        if attempts >= self.cfg.retries {
            self.retries.remove(&pid);
            return false;
        }
        let delay = self.cfg.retry_backoff.saturating_mul(1 << attempts.min(16));
        let alt = self.alternate_dest(dest);
        self.retries.insert(
            pid,
            Retry {
                attempts,
                pending: Some((now + delay, alt, reply)),
            },
        );
        true
    }

    /// Migrations currently in flight on either side.
    pub fn in_flight(&self) -> usize {
        self.outgoing.len() + self.incoming.len()
    }

    /// Begin migrating local process `pid` to `dest` (steps 1–2). The
    /// optional `reply` link receives the `Done` notification (#9).
    #[allow(clippy::too_many_arguments)]
    pub fn start_migration(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        pid: ProcessId,
        dest: MachineId,
        reply: Option<Link>,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Result<()> {
        if dest == self.machine {
            return Err(DemosError::MigrationToSelf(pid));
        }
        if self.outgoing.values().any(|m| m.pid == pid) {
            return Err(DemosError::AlreadyMigrating(pid));
        }
        // Step 1: freeze. Refuses unknown pids and double migrations.
        let sizes = kernel.freeze_for_migration(now, pid, phys, out)?;
        let ctx = self.next_ctx;
        self.next_ctx = self.next_ctx.wrapping_add(1).max(1);
        self.outgoing.insert(
            ctx,
            SourceMig {
                pid,
                dest,
                started: now,
                reply,
                accepted: false,
            },
        );
        self.stats.started += 1;
        // Step 2: offer, carrying the reply link so the destination can
        // notify the requester directly (links are context-independent).
        let offer = MigrateMsg::Offer {
            ctx,
            pid,
            resident_len: sizes.resident.min(u16::MAX as u32) as u16,
            swappable_len: sizes.swappable.min(u16::MAX as u32) as u16,
            image_len: sizes.image,
        };
        let links = reply.into_iter().collect();
        kernel.send_migrate_msg(now, dest, offer.to_bytes(), links, phys, out);
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Offered,
            bytes: sizes.resident as u64 + sizes.swappable as u64 + sizes.image as u64,
        });
        Ok(())
    }

    /// Feed one message from the kernel's migration inbox (both the
    /// kernel-to-kernel `MIGRATE` protocol and `MigrateRequest` control
    /// ops).
    pub fn handle(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        msg: Message,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        if msg.header.msg_type == demos_types::tags::KERNEL_OP {
            if let Ok(KernelOp::MigrateRequest { dest, .. }) = KernelOp::from_bytes(&msg.payload) {
                let pid = msg.header.dest.pid;
                let reply = msg.links.first().copied();
                if let Err(e) = self.start_migration(now, kernel, pid, dest, reply, phys, out) {
                    // Notify the requester of the failure, if possible.
                    if let Some(r) = msg.links.first() {
                        let done = MigrateMsg::Done {
                            pid,
                            dest,
                            status: reject_status(&e),
                        };
                        kernel.send_kernel_to(
                            now,
                            *r,
                            demos_types::tags::MIGRATE,
                            done.to_bytes(),
                            phys,
                            out,
                        );
                    }
                }
            }
            return;
        }
        debug_assert_eq!(msg.header.msg_type, demos_types::tags::MIGRATE);
        let Ok(m) = MigrateMsg::from_bytes(&msg.payload) else {
            return;
        };
        let from = msg.header.src_machine;
        match m {
            MigrateMsg::Offer {
                ctx,
                pid,
                resident_len,
                swappable_len,
                image_len,
            } => {
                let reply = msg.links.first().copied();
                let dest = self.machine;
                self.on_offer(
                    now,
                    kernel,
                    from,
                    ctx,
                    OfferInfo {
                        pid,
                        src: from,
                        dest,
                        resident_len,
                        swappable_len,
                        image_len,
                    },
                    reply,
                    phys,
                    out,
                );
            }
            MigrateMsg::Accept { ctx, .. } => {
                // Guard on the sender: contexts are per-source counters, so
                // a stale Accept from another machine could otherwise hit an
                // unrelated outgoing migration that reused the number.
                if let Some(mig) = self.outgoing.get_mut(&ctx).filter(|m| m.dest == from) {
                    mig.accepted = true;
                }
            }
            MigrateMsg::Reject { ctx, pid, reason } => {
                let matches = self
                    .outgoing
                    .get(&ctx)
                    .is_some_and(|m| m.dest == from && m.pid == pid);
                if matches {
                    let Some(mig) = self.outgoing.remove(&ctx) else {
                        return;
                    };
                    self.stats.aborted += 1;
                    self.stats.rejected_by_reason[match reason {
                        RejectReason::Capacity => 0,
                        RejectReason::Policy => 1,
                        RejectReason::DuplicatePid => 2,
                        RejectReason::Protocol => 3,
                    }] += 1;
                    let retried = self.schedule_retry(now, mig.pid, mig.dest, mig.reply);
                    kernel.unfreeze(mig.pid, out);
                    out.trace.push(TraceEvent::Migration {
                        pid: mig.pid,
                        phase: MigrationPhase::Rejected,
                        bytes: 0,
                    });
                    if let Some(r) = mig.reply.filter(|_| !retried) {
                        let done = MigrateMsg::Done {
                            pid: mig.pid,
                            dest: mig.dest,
                            status: 1 + reason as u8,
                        };
                        kernel.send_kernel_to(
                            now,
                            r,
                            demos_types::tags::MIGRATE,
                            done.to_bytes(),
                            phys,
                            out,
                        );
                    }
                }
            }
            MigrateMsg::TransferComplete { ctx, .. } => {
                // Steps 6–7 at the source. Guarded on the sender so a
                // context number reused by another machine cannot complete
                // an unrelated migration.
                if self.outgoing.get(&ctx).is_some_and(|m| m.dest == from) {
                    let Some(mig) = self.outgoing.remove(&ctx) else {
                        return;
                    };
                    match kernel.finish_source_side(now, mig.pid, mig.dest, phys, out) {
                        Ok(forwarded) => {
                            self.stats.pending_forwarded += forwarded as u64;
                            self.stats.completed_out += 1;
                            self.retries.remove(&mig.pid);
                            let cleanup = MigrateMsg::CleanupDone { ctx, forwarded };
                            kernel.send_migrate_msg(
                                now,
                                mig.dest,
                                cleanup.to_bytes(),
                                vec![],
                                phys,
                                out,
                            );
                        }
                        Err(_) => {
                            // Process vanished mid-migration (killed):
                            // tell the destination to drop its copy.
                            let abort = MigrateMsg::Abort { ctx, pid: mig.pid };
                            kernel.send_migrate_msg(
                                now,
                                mig.dest,
                                abort.to_bytes(),
                                vec![],
                                phys,
                                out,
                            );
                            self.stats.aborted += 1;
                            self.retries.remove(&mig.pid);
                        }
                    }
                }
            }
            MigrateMsg::CleanupDone { ctx, .. } => {
                // Step 8 at the destination.
                if let Some(mig) = self.incoming.remove(&(from, ctx)) {
                    if kernel.restart_migrated(mig.pid, out).is_ok() {
                        self.stats.completed_in += 1;
                        self.stats.total_in_duration += now.since(mig.started);
                        if let Some(r) = mig.reply {
                            let done = MigrateMsg::Done {
                                pid: mig.pid,
                                dest: self.machine,
                                status: 0,
                            };
                            kernel.send_kernel_to(
                                now,
                                r,
                                demos_types::tags::MIGRATE,
                                done.to_bytes(),
                                phys,
                                out,
                            );
                        }
                    }
                }
            }
            MigrateMsg::Abort { ctx, pid } => {
                // Source told us (destination) to abandon; or destination
                // told us (source) it failed mid-transfer. Each abort must
                // hit exactly the migration it names: contexts are per-
                // source counters, so both branches also match on pid (and
                // the outgoing branch on the sending machine) — otherwise a
                // crossing Abort whose own record already timed out locally
                // would remove an unrelated migration that reused the
                // context number, double-counting `aborted`.
                let incoming_match = self
                    .incoming
                    .get(&(from, ctx))
                    .is_some_and(|m| m.pid == pid);
                let outgoing_match = self
                    .outgoing
                    .get(&ctx)
                    .is_some_and(|m| m.dest == from && m.pid == pid);
                if incoming_match {
                    let Some(mig) = self.incoming.remove(&(from, ctx)) else {
                        return;
                    };
                    kernel.release_reservation(mig.slot);
                    if mig.installed {
                        kernel.kill(now, mig.pid, phys, out);
                    }
                    self.stats.aborted += 1;
                    out.trace.push(TraceEvent::Migration {
                        pid,
                        phase: MigrationPhase::Aborted,
                        bytes: 0,
                    });
                } else if outgoing_match {
                    let Some(mig) = self.outgoing.remove(&ctx) else {
                        return;
                    };
                    kernel.unfreeze(mig.pid, out);
                    self.stats.aborted += 1;
                    let retried = self.schedule_retry(now, mig.pid, mig.dest, mig.reply);
                    if let Some(r) = mig.reply.filter(|_| !retried) {
                        let done = MigrateMsg::Done {
                            pid: mig.pid,
                            dest: mig.dest,
                            status: 200,
                        };
                        kernel.send_kernel_to(
                            now,
                            r,
                            demos_types::tags::MIGRATE,
                            done.to_bytes(),
                            phys,
                            out,
                        );
                    }
                }
            }
            MigrateMsg::Done { .. } => {
                // Addressed to the requesting process, not the engine.
            }
        }
    }

    /// Destination side of the offer (steps 3–5 start here).
    #[allow(clippy::too_many_arguments)]
    fn on_offer(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        from: MachineId,
        src_ctx: u16,
        info: OfferInfo,
        reply: Option<Link>,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let policy_ok = match self.cfg.accept {
            AcceptPolicy::Always => true,
            AcceptPolicy::Never => false,
            AcceptPolicy::Custom(f) => f(&info),
        };
        if !policy_ok {
            self.reject_offer(
                now,
                kernel,
                from,
                src_ctx,
                info.pid,
                RejectReason::Policy,
                phys,
                out,
            );
            return;
        }
        // A re-used (source, context) pair while that context's migration
        // is still in flight is a protocol violation: accepting it would
        // overwrite the in-progress entry and leak its reservation.
        if self.incoming.contains_key(&(from, src_ctx)) {
            self.reject_offer(
                now,
                kernel,
                from,
                src_ctx,
                info.pid,
                RejectReason::Protocol,
                phys,
                out,
            );
            return;
        }
        // Step 3: allocate an (empty) process state — here, a capacity
        // reservation under the same process identifier.
        let slot = match kernel.reserve_incoming(info.pid, info.image_len as u64) {
            Ok(slot) => slot,
            Err(e) => {
                // Exhaustive: a new error variant must consciously pick
                // its reject reason (Capacity is the §5 step-3 bucket —
                // "allocate process state" failed — not a default).
                let reason = match e {
                    DemosError::AlreadyMigrating(_) => RejectReason::DuplicatePid,
                    DemosError::NoSuchMachine(_)
                    | DemosError::NoSuchProcess(_)
                    | DemosError::BadLink(_)
                    | DemosError::LinkAccess { .. }
                    | DemosError::ReplyLinkConsumed(_)
                    | DemosError::AreaOutOfBounds
                    | DemosError::MigrationRejected(_)
                    | DemosError::MigrationAborted(_)
                    | DemosError::MigrationToSelf(_)
                    | DemosError::KernelImmovable(_)
                    | DemosError::NonDeliverable(_)
                    | DemosError::TooLarge { .. }
                    | DemosError::Capacity(_)
                    | DemosError::Wire(_)
                    | DemosError::UnknownProgram(_)
                    | DemosError::Internal(_) => RejectReason::Capacity,
                };
                self.reject_offer(now, kernel, from, src_ctx, info.pid, reason, phys, out);
                return;
            }
        };
        out.trace.push(TraceEvent::Migration {
            pid: info.pid,
            phase: MigrationPhase::Allocated,
            bytes: 0,
        });
        let accept = MigrateMsg::Accept {
            ctx: src_ctx,
            slot,
            window: 1024,
        };
        kernel.send_migrate_msg(now, from, accept.to_bytes(), vec![], phys, out);
        self.incoming.insert(
            (from, src_ctx),
            DestMig {
                pid: info.pid,
                src: from,
                src_ctx,
                slot,
                started: now,
                reply,
                stage: Stage::Resident,
                resident: Vec::new(),
                swappable: Vec::new(),
                received: 0,
                installed: false,
            },
        );
        // Step 4 begins: pull the resident state.
        kernel.start_kernel_pull(
            now,
            cookie(from, src_ctx, Stage::Resident),
            info.pid,
            from,
            AreaSel::Resident,
            phys,
            out,
        );
    }

    /// Refuse an offer: count it, notify the source, trace the rejection.
    #[allow(clippy::too_many_arguments)]
    fn reject_offer(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        from: MachineId,
        src_ctx: u16,
        pid: ProcessId,
        reason: RejectReason,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        self.stats.rejected += 1;
        let reject = MigrateMsg::Reject {
            ctx: src_ctx,
            pid,
            reason,
        };
        kernel.send_migrate_msg(now, from, reject.to_bytes(), vec![], phys, out);
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Rejected,
            bytes: 0,
        });
    }

    /// Feed a completed kernel pull (from [`Outbox::pull_done`]).
    pub fn on_pull_done(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        done: demos_kernel::KernelPullDone,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let (src, ctx, stage) = uncookie(done.cookie);
        let Some(mig) = self.incoming.get_mut(&(src, ctx)) else {
            return;
        };
        if done.status != 0 {
            let Some(mig) = self.incoming.remove(&(src, ctx)) else {
                return;
            };
            kernel.release_reservation(mig.slot);
            self.stats.aborted += 1;
            let abort = MigrateMsg::Abort { ctx, pid: mig.pid };
            kernel.send_migrate_msg(now, src, abort.to_bytes(), vec![], phys, out);
            out.trace.push(TraceEvent::Migration {
                pid: mig.pid,
                phase: MigrationPhase::Aborted,
                bytes: 0,
            });
            return;
        }
        debug_assert_eq!(mig.stage, stage, "pull completions arrive in order");
        mig.received += done.data.len() as u64;
        self.stats.bytes_received += done.data.len() as u64;
        match stage {
            Stage::Resident => {
                mig.resident = done.data;
                mig.stage = Stage::Swappable;
                kernel.start_kernel_pull(
                    now,
                    cookie(src, ctx, Stage::Swappable),
                    mig.pid,
                    src,
                    AreaSel::Swappable,
                    phys,
                    out,
                );
            }
            Stage::Swappable => {
                mig.swappable = done.data;
                mig.stage = Stage::Image;
                out.trace.push(TraceEvent::Migration {
                    pid: mig.pid,
                    phase: MigrationPhase::StateTransferred,
                    bytes: mig.received,
                });
                kernel.start_kernel_pull(
                    now,
                    cookie(src, ctx, Stage::Image),
                    mig.pid,
                    src,
                    AreaSel::Image,
                    phys,
                    out,
                );
            }
            Stage::Image => {
                // Step 5 complete: install.
                let (pid, slot, resident, swappable) = (
                    mig.pid,
                    mig.slot,
                    std::mem::take(&mut mig.resident),
                    std::mem::take(&mut mig.swappable),
                );
                let received = mig.received;
                match kernel
                    .install_migrated(now, slot, src, &resident, &swappable, &done.data, out)
                {
                    Ok(installed_pid) => {
                        debug_assert_eq!(installed_pid, pid);
                        if let Some(mig) = self.incoming.get_mut(&(src, ctx)) {
                            mig.installed = true;
                        }
                        let complete = MigrateMsg::TransferComplete {
                            ctx,
                            received: received as u32,
                        };
                        kernel.send_migrate_msg(now, src, complete.to_bytes(), vec![], phys, out);
                    }
                    Err(_) => {
                        if let Some(mig) = self.incoming.remove(&(src, ctx)) {
                            kernel.release_reservation(mig.slot);
                        }
                        self.stats.aborted += 1;
                        let abort = MigrateMsg::Abort { ctx, pid };
                        kernel.send_migrate_msg(now, src, abort.to_bytes(), vec![], phys, out);
                        out.trace.push(TraceEvent::Migration {
                            pid,
                            phase: MigrationPhase::Aborted,
                            bytes: 0,
                        });
                    }
                }
            }
        }
    }

    /// A peer machine was confirmed dead by the failure detector: resolve
    /// every in-flight migration touching it now instead of letting the
    /// timeout guess.
    ///
    /// An **installed** incoming copy is committed locally — the dead
    /// source can no longer send `CleanupDone` or `Abort`, and whichever
    /// point of the handshake it died at, its own copy is gone, so the
    /// local copy is the only one (§1's "migration off a crashed
    /// processor"). Killing it on timeout instead would destroy the last
    /// copy of the process. A **partial** incoming transfer is dropped and
    /// its reservation released. An **outgoing** migration to the dead
    /// machine is aborted, the frozen source copy thawed, and the process
    /// re-offered to an alternate destination when the retry budget
    /// allows.
    pub fn on_peer_dead(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        peer: MachineId,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let incoming: Vec<(MachineId, u16)> = self
            .incoming
            .keys()
            .filter(|&&(src, _)| src == peer)
            .copied()
            .collect();
        for key in incoming {
            let Some(mig) = self.incoming.remove(&key) else {
                continue;
            };
            if mig.installed && kernel.restart_migrated(mig.pid, out).is_ok() {
                self.stats.completed_in += 1;
                self.stats.total_in_duration += now.since(mig.started);
                out.trace.push(TraceEvent::Migration {
                    pid: mig.pid,
                    phase: MigrationPhase::Restarted,
                    bytes: 0,
                });
                if let Some(r) = mig.reply {
                    let done = MigrateMsg::Done {
                        pid: mig.pid,
                        dest: self.machine,
                        status: 0,
                    };
                    kernel.send_kernel_to(
                        now,
                        r,
                        demos_types::tags::MIGRATE,
                        done.to_bytes(),
                        phys,
                        out,
                    );
                }
            } else {
                kernel.release_reservation(mig.slot);
                self.stats.aborted += 1;
                out.trace.push(TraceEvent::Migration {
                    pid: mig.pid,
                    phase: MigrationPhase::Aborted,
                    bytes: 0,
                });
            }
        }
        let outgoing: Vec<u16> = self
            .outgoing
            .iter()
            .filter(|(_, m)| m.dest == peer)
            .map(|(&c, _)| c)
            .collect();
        for ctx in outgoing {
            let Some(mig) = self.outgoing.remove(&ctx) else {
                continue;
            };
            self.stats.aborted += 1;
            kernel.unfreeze(mig.pid, out);
            let retried = self.schedule_retry(now, mig.pid, mig.dest, mig.reply);
            out.trace.push(TraceEvent::Migration {
                pid: mig.pid,
                phase: MigrationPhase::Aborted,
                bytes: 0,
            });
            if let Some(r) = mig.reply.filter(|_| !retried) {
                let done = MigrateMsg::Done {
                    pid: mig.pid,
                    dest: mig.dest,
                    status: 203,
                };
                kernel.send_kernel_to(
                    now,
                    r,
                    demos_types::tags::MIGRATE,
                    done.to_bytes(),
                    phys,
                    out,
                );
            }
        }
    }

    /// Earliest in-flight migration deadline or scheduled retry, for the
    /// simulation loop.
    pub fn next_timeout(&self) -> Option<Time> {
        let o = self
            .outgoing
            .values()
            .map(|m| m.started + self.cfg.timeout)
            .min();
        let i = self
            .incoming
            .values()
            .map(|m| m.started + self.cfg.timeout)
            .min();
        let r = self
            .retries
            .values()
            .filter_map(|r| r.pending.map(|(t, _, _)| t))
            .min();
        [o, i, r].into_iter().flatten().min()
    }

    /// Abort migrations that exceeded the timeout (crashed peers).
    pub fn on_time(
        &mut self,
        now: Time,
        kernel: &mut Kernel,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let stale_out: Vec<u16> = self
            .outgoing
            .iter()
            .filter(|(_, m)| now.since(m.started) >= self.cfg.timeout)
            .map(|(&c, _)| c)
            .collect();
        for ctx in stale_out {
            let Some(mig) = self.outgoing.remove(&ctx) else {
                continue;
            };
            self.stats.aborted += 1;
            kernel.unfreeze(mig.pid, out);
            let retried = self.schedule_retry(now, mig.pid, mig.dest, mig.reply);
            let abort = MigrateMsg::Abort { ctx, pid: mig.pid };
            kernel.send_migrate_msg(now, mig.dest, abort.to_bytes(), vec![], phys, out);
            if let Some(r) = mig.reply.filter(|_| !retried) {
                let done = MigrateMsg::Done {
                    pid: mig.pid,
                    dest: mig.dest,
                    status: 201,
                };
                kernel.send_kernel_to(
                    now,
                    r,
                    demos_types::tags::MIGRATE,
                    done.to_bytes(),
                    phys,
                    out,
                );
            }
        }
        let stale_in: Vec<(MachineId, u16)> = self
            .incoming
            .iter()
            .filter(|(_, m)| now.since(m.started) >= self.cfg.timeout)
            .map(|(&k, _)| k)
            .collect();
        for key in stale_in {
            let Some(mig) = self.incoming.remove(&key) else {
                continue;
            };
            kernel.release_reservation(mig.slot);
            if mig.installed {
                kernel.kill(now, mig.pid, phys, out);
            }
            self.stats.aborted += 1;
            let abort = MigrateMsg::Abort {
                ctx: mig.src_ctx,
                pid: mig.pid,
            };
            kernel.send_migrate_msg(now, mig.src, abort.to_bytes(), vec![], phys, out);
            out.trace.push(TraceEvent::Migration {
                pid: mig.pid,
                phase: MigrationPhase::Aborted,
                bytes: 0,
            });
        }
        // Fire scheduled retries: re-offer each aborted process to its
        // alternate destination (bounded by `cfg.retries`).
        let due: Vec<(ProcessId, MachineId, Option<Link>)> = self
            .retries
            .iter()
            .filter_map(|(&pid, r)| {
                r.pending
                    .filter(|&(t, _, _)| t <= now)
                    .map(|(_, dest, reply)| (pid, dest, reply))
            })
            .collect();
        for (pid, dest, reply) in due {
            let Some(entry) = self.retries.get_mut(&pid) else {
                continue;
            };
            entry.pending = None;
            entry.attempts += 1;
            self.stats.retried += 1;
            if self
                .start_migration(now, kernel, pid, dest, reply, phys, out)
                .is_err()
            {
                // The process is gone (killed) or already moving again:
                // give up on this retry chain.
                self.retries.remove(&pid);
                if let Some(r) = reply {
                    let done = MigrateMsg::Done {
                        pid,
                        dest,
                        status: 202,
                    };
                    kernel.send_kernel_to(
                        now,
                        r,
                        demos_types::tags::MIGRATE,
                        done.to_bytes(),
                        phys,
                        out,
                    );
                }
            }
        }
    }
}

fn reject_status(e: &DemosError) -> u8 {
    // Exhaustive: a new error variant must consciously pick its status
    // byte (199 is the generic bucket, chosen per-variant, not by default).
    match e {
        DemosError::MigrationToSelf(_) => 100,
        DemosError::AlreadyMigrating(_) => 101,
        DemosError::NoSuchProcess(_) => 102,
        DemosError::KernelImmovable(_) => 103,
        DemosError::NoSuchMachine(_)
        | DemosError::BadLink(_)
        | DemosError::LinkAccess { .. }
        | DemosError::ReplyLinkConsumed(_)
        | DemosError::AreaOutOfBounds
        | DemosError::MigrationRejected(_)
        | DemosError::MigrationAborted(_)
        | DemosError::NonDeliverable(_)
        | DemosError::TooLarge { .. }
        | DemosError::Capacity(_)
        | DemosError::Wire(_)
        | DemosError::UnknownProgram(_)
        | DemosError::Internal(_) => 199,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_roundtrip() {
        for (m, c, s) in [
            (MachineId(0), 1u16, Stage::Resident),
            (MachineId(7), 0xffff, Stage::Swappable),
            (MachineId(u16::MAX), 42, Stage::Image),
        ] {
            let (m2, c2, s2) = uncookie(cookie(m, c, s));
            assert_eq!((m, c, s), (m2, c2, s2));
        }
    }

    #[test]
    fn accept_policy_custom() {
        fn only_small(info: &OfferInfo) -> bool {
            info.image_len < 1000
        }
        let p = AcceptPolicy::Custom(only_small);
        let small = OfferInfo {
            pid: ProcessId {
                creating_machine: MachineId(0),
                local_uid: 1,
            },
            src: MachineId(0),
            dest: MachineId(1),
            resident_len: 250,
            swappable_len: 600,
            image_len: 500,
        };
        let big = OfferInfo {
            image_len: 5000,
            ..small
        };
        match p {
            AcceptPolicy::Custom(f) => {
                assert!(f(&small));
                assert!(!f(&big));
            }
            _ => unreachable!(),
        }
    }
}
