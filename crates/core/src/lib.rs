//! Process migration for DEMOS/MP — the paper's primary contribution.
//!
//! This crate implements §3–§5 of *Process Migration in DEMOS/MP* (Powell
//! & Miller, SOSP 1983) on top of the `demos-kernel` mechanisms:
//!
//! * [`engine`] — the eight-step migration protocol (§3.1), destination
//!   -driven after the offer, with the nine administrative messages, the
//!   three move-data state transfers, autonomy/inter-domain accept
//!   policies (§3.2), and timeout-based abort;
//! * [`node`] — the per-machine composition of kernel + engine that the
//!   simulation harness drives.
//!
//! Message *forwarding* (§4) and *link updating* (§5) are properties of
//! the delivery system and live in `demos-kernel`; migration installs the
//! forwarding address as its step 7 and the delivery system does the rest.
//! The rejected-alternative non-delivery mode and the forwarding-address
//! garbage collector are selected through
//! [`demos_kernel::KernelConfig::forwarding`] and
//! [`demos_kernel::KernelConfig::gc_forwarding`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod node;

pub use engine::{AcceptPolicy, MigrationConfig, MigrationEngine, MigrationStats, OfferInfo};
pub use node::Node;
