//! A node: one machine's kernel plus its migration engine.
//!
//! The simulation loop drives [`Node`]s, not bare kernels: every kernel
//! entry point is wrapped so that migration-protocol messages and
//! state-transfer completions surfaced in the kernel [`Outbox`] are fed to
//! the [`MigrationEngine`] before control returns — including any produced
//! recursively while the engine itself acts on the kernel.

use demos_kernel::{Kernel, KernelConfig, Outbox, Registry};
use demos_net::{Frame, Phys};
use demos_types::{Duration, Link, MachineId, Message, ProcessId, Result, Time};

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::engine::{MigrationConfig, MigrationEngine};

/// One simulated processor: kernel + migration engine.
pub struct Node {
    /// The kernel (mechanisms).
    pub kernel: Kernel,
    /// The migration engine (protocol).
    pub engine: MigrationEngine,
    /// Dead-peer verdicts already relayed to the engine.
    notified_dead: BTreeSet<MachineId>,
}

impl Node {
    /// Build a node for `machine`.
    pub fn new(
        machine: MachineId,
        kcfg: KernelConfig,
        mcfg: MigrationConfig,
        registry: Arc<Registry>,
    ) -> Self {
        Node {
            kernel: Kernel::new(machine, kcfg, registry),
            engine: MigrationEngine::new(machine, mcfg),
            notified_dead: BTreeSet::new(),
        }
    }

    /// This node's machine id.
    pub fn machine(&self) -> MachineId {
        self.kernel.machine()
    }

    /// Feed engine-bound items out of the outbox until quiescent.
    /// Each engine action may enqueue further items (e.g. a local
    /// migration request produces pulls whose completions re-enter here).
    fn drain(&mut self, now: Time, phys: &mut dyn Phys, out: &mut Outbox) {
        // Generously bounded: protocol chains are short; a bound turns a
        // hypothetical livelock into a visible failure.
        for _ in 0..10_000 {
            if out.migration_inbox.is_empty() && out.pull_done.is_empty() {
                return;
            }
            let msgs: Vec<Message> = out.migration_inbox.drain(..).collect();
            let pulls: Vec<demos_kernel::KernelPullDone> = out.pull_done.drain(..).collect();
            for m in msgs {
                self.engine.handle(now, &mut self.kernel, m, phys, out);
            }
            for p in pulls {
                self.engine
                    .on_pull_done(now, &mut self.kernel, p, phys, out);
            }
        }
        debug_assert!(false, "migration drain did not quiesce");
    }

    /// Transport frame arrived.
    pub fn on_frame(
        &mut self,
        now: Time,
        from: MachineId,
        frame: Frame,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        self.kernel.on_frame(now, from, frame, phys, out);
        self.drain(now, phys, out);
    }

    /// Submit a locally originated message.
    pub fn submit(&mut self, now: Time, msg: Message, phys: &mut dyn Phys, out: &mut Outbox) {
        self.kernel.submit(now, msg, phys, out);
        self.drain(now, phys, out);
    }

    /// Run one program activation.
    pub fn run_next(
        &mut self,
        now: Time,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Option<(ProcessId, Duration)> {
        let r = self.kernel.run_next(now, phys, out);
        self.drain(now, phys, out);
        r
    }

    /// Whether the run queue may hold work.
    pub fn has_runnable(&self) -> bool {
        self.kernel.has_runnable()
    }

    /// Earliest deadline across kernel timers, transport retransmissions
    /// and migration timeouts. Authoritative scan, kept for `&self`
    /// callers (the native runtime); the simulation hot loop uses
    /// [`Node::next_deadline`].
    pub fn next_timer_at(&self) -> Option<Time> {
        match (self.kernel.next_timer_at(), self.engine.next_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Indexed equivalent of [`Node::next_timer_at`]: O(log n) peeks over
    /// the kernel's lazy timer/retransmission heaps, plus the engine's
    /// scan over its (few) active migrations.
    pub fn next_deadline(&mut self) -> Option<Time> {
        match (self.kernel.next_deadline(), self.engine.next_timeout()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire due deadlines. Newly confirmed-dead peers (the detector
    /// reaches its verdict inside the kernel's timer path) are relayed to
    /// the migration engine so in-flight migrations touching a dead
    /// machine resolve immediately instead of timing out — an installed
    /// incoming copy would otherwise be killed by the timeout even though
    /// it is the last copy of the process.
    pub fn on_time(&mut self, now: Time, phys: &mut dyn Phys, out: &mut Outbox) {
        self.kernel.on_time(now, phys, out);
        let newly: Vec<MachineId> = self
            .kernel
            .dead_peers()
            .filter(|p| !self.notified_dead.contains(p))
            .collect();
        for peer in newly {
            self.notified_dead.insert(peer);
            self.engine
                .on_peer_dead(now, &mut self.kernel, peer, phys, out);
        }
        self.engine.on_time(now, &mut self.kernel, phys, out);
        self.drain(now, phys, out);
    }

    /// A crashed peer came back: clear the dead verdict (kernel) and the
    /// relay latch, so a second death of the same machine is reported to
    /// the engine again.
    ///
    /// The reboot is also this node's death certificate for the *old*
    /// incarnation: the fresh kernel remembers none of its migration
    /// contexts, so any in-flight migration with that peer is resolved
    /// exactly as a confirmed death would — an installed incoming copy
    /// is the last copy of its process and restarts here (the 10 s
    /// timeout would kill it), a partial transfer is dropped, an
    /// outgoing migration thaws and may re-offer. Without this, a peer
    /// that crashes and reboots *inside* the failure-detection window
    /// leaves the migration to the timeout's worst-case guess.
    pub fn peer_revived(
        &mut self,
        now: Time,
        peer: MachineId,
        epoch: u32,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        self.kernel.peer_revived(now, peer, epoch);
        self.notified_dead.remove(&peer);
        self.engine
            .on_peer_dead(now, &mut self.kernel, peer, phys, out);
        self.drain(now, phys, out);
    }

    /// Convenience for harnesses: migrate `pid` to `dest` directly,
    /// without a process-manager message (the paper's test setup — "the
    /// decision to move a particular process and the choice of destination
    /// were arbitrary", §3.1).
    pub fn migrate(
        &mut self,
        now: Time,
        pid: ProcessId,
        dest: MachineId,
        reply: Option<Link>,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Result<()> {
        let r = self
            .engine
            .start_migration(now, &mut self.kernel, pid, dest, reply, phys, out);
        self.drain(now, phys, out);
        r
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("kernel", &self.kernel)
            .finish()
    }
}
