//! Kernel-level integration: two kernels driven directly by a minimal
//! frame pump (no simulator) — pinning the delivery-system semantics of
//! §2.2 and §4 at the lowest level they exist.

use bytes::Bytes;
use demos_kernel::{
    local_tags, Carry, Ctx, Delivered, ImageLayout, Kernel, KernelConfig, Outbox, Program, Registry,
};
use demos_net::{Frame, Phys};
use demos_types::proto::{KernelOp, LinkMaintMsg};
use demos_types::wire::Wire;
use demos_types::{
    tags, Link, LinkAttrs, MachineId, Message, MsgFlags, MsgHeader, ProcessId, Time,
};
use std::sync::Arc;

/// In-memory physical layer collecting frames per destination.
#[derive(Default)]
struct Pump {
    queues: Vec<Vec<(MachineId, Frame)>>,
}

impl Pump {
    fn new(n: usize) -> Self {
        Pump {
            queues: (0..n).map(|_| Vec::new()).collect(),
        }
    }
}

impl Phys for Pump {
    fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
        self.queues[dst.0 as usize].push((src, frame));
    }
}

/// A recorder program: remembers every (type, payload byte 0) it sees.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u16, u8)>,
}

impl Program for Recorder {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Delivered) {
        self.seen
            .push((msg.msg_type, msg.payload.first().copied().unwrap_or(0xFF)));
    }
    fn save(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for (t, b) in &self.seen {
            v.extend_from_slice(&t.to_be_bytes());
            v.push(*b);
        }
        v
    }
}

/// A responder: replies over the carried reply link, echoing payload+1.
#[derive(Default)]
struct Responder;

impl Program for Responder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if let Some(reply) = msg.reply() {
            let v = msg.payload.first().copied().unwrap_or(0).wrapping_add(1);
            let _ = ctx.send(reply, msg.msg_type, Bytes::from(vec![v]), &[]);
        }
    }
    fn save(&self) -> Vec<u8> {
        Vec::new()
    }
}

/// A requester: on INIT sends one request with a reply link over links[0].
#[derive(Default)]
struct Requester {
    reply_payload: u8,
    replied: bool,
}

impl Program for Requester {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        const INIT: u16 = tags::USER_BASE;
        if msg.msg_type == INIT {
            if let Some(&server) = msg.links.first() {
                let _ = ctx.send(
                    server,
                    tags::USER_BASE + 2,
                    Bytes::from_static(&[5]),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
        } else {
            self.reply_payload = msg.payload.first().copied().unwrap_or(0);
            self.replied = true;
        }
    }
    fn save(&self) -> Vec<u8> {
        vec![self.reply_payload, self.replied as u8]
    }
}

fn registry() -> Arc<Registry> {
    let mut r = Registry::new();
    r.register("recorder", |_| Box::<Recorder>::default());
    r.register("responder", |_| Box::<Responder>::default());
    r.register("requester", |_| Box::<Requester>::default());
    r.into_shared()
}

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Pump frames and run kernels until quiescent.
fn settle(kernels: &mut [Kernel], pump: &mut Pump, out: &mut Outbox) {
    for _round in 0..1000 {
        let mut progressed = false;
        for (i, kernel) in kernels.iter_mut().enumerate() {
            for (src, f) in std::mem::take(&mut pump.queues[i]) {
                kernel.on_frame(Time(1000), src, f, pump, out);
                progressed = true;
            }
            while kernel.run_next(Time(1000), pump, out).is_some() {
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
    panic!("did not settle");
}

fn kernel_msg(
    from: MachineId,
    dest: Link,
    msg_type: u16,
    payload: Bytes,
    links: Vec<Link>,
) -> Message {
    let mut flags = MsgFlags::FROM_KERNEL;
    if dest.is_dtk() {
        flags = flags | MsgFlags::DELIVER_TO_KERNEL;
    }
    Message {
        header: MsgHeader {
            dest: dest.addr,
            src: ProcessId::kernel_of(from),
            src_machine: from,
            msg_type,
            flags,
            hops: 0,
        },
        links,
        payload,
        corr: demos_types::CorrId::NONE,
    }
}

#[test]
fn request_reply_across_kernels() {
    let reg = registry();
    let mut kernels = vec![
        Kernel::new(m(0), KernelConfig::default(), Arc::clone(&reg)),
        Kernel::new(m(1), KernelConfig::default(), reg),
    ];
    let mut pump = Pump::new(2);
    let mut out = Outbox::default();
    let server = kernels[1]
        .spawn(
            Time(0),
            "responder",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    let client = kernels[0]
        .spawn(
            Time(0),
            "requester",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    let init = kernel_msg(
        m(0),
        Link::to(client.at(m(0))),
        tags::USER_BASE,
        Bytes::new(),
        vec![Link::to(server.at(m(1)))],
    );
    kernels[0].submit(Time(0), init, &mut pump, &mut out);
    settle(&mut kernels, &mut pump, &mut out);
    let state = kernels[0]
        .process(client)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    assert_eq!(
        state,
        vec![6, 1],
        "reply 5+1 arrived over the one-shot reply link"
    );
}

#[test]
fn dtk_message_received_by_kernel_not_program() {
    let reg = registry();
    let mut kernels = [Kernel::new(m(0), KernelConfig::default(), reg)];
    let mut pump = Pump::new(1);
    let mut out = Outbox::default();
    let pid = kernels[0]
        .spawn(
            Time(0),
            "recorder",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    // A DTK Suspend: the kernel must act on it; the program never sees it.
    let dtk = kernel_msg(
        m(0),
        Link::deliver_to_kernel(pid.at(m(0))),
        tags::KERNEL_OP,
        KernelOp::Suspend.to_bytes(),
        vec![],
    );
    kernels[0].submit(Time(0), dtk, &mut pump, &mut out);
    settle(&mut kernels, &mut pump, &mut out);
    let proc = kernels[0].process(pid).unwrap();
    assert_eq!(proc.status, demos_kernel::ExecStatus::Suspended);
    assert!(
        proc.program.as_ref().unwrap().save().is_empty(),
        "program saw nothing"
    );
    assert_eq!(kernels[0].stats().kernel_received, 1);
}

#[test]
fn stale_hint_still_delivers_locally_by_pid() {
    // §3.1's delivery rule: "the normal message delivery system tries to
    // find a process when a message arrives for it" — a wrong hint for a
    // local process must not bounce the message around.
    let reg = registry();
    let mut kernels = [Kernel::new(m(0), KernelConfig::default(), reg)];
    let mut pump = Pump::new(1);
    let mut out = Outbox::default();
    let pid = kernels[0]
        .spawn(
            Time(0),
            "recorder",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    // Hint says machine 7; process is right here.
    let msg = kernel_msg(
        m(0),
        Link::to(pid.at(MachineId(7))),
        tags::USER_BASE + 3,
        Bytes::from_static(&[9]),
        vec![],
    );
    kernels[0].submit(Time(0), msg, &mut pump, &mut out);
    settle(&mut kernels, &mut pump, &mut out);
    let state = kernels[0]
        .process(pid)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    assert_eq!(
        state.len(),
        3,
        "one message recorded despite the stale hint"
    );
    assert_eq!(
        kernels[0].stats().transmitted,
        0,
        "never touched the network"
    );
}

#[test]
fn nondeliverable_roundtrip_between_kernels() {
    let reg = registry();
    let mut kernels = vec![
        Kernel::new(m(0), KernelConfig::default(), Arc::clone(&reg)),
        Kernel::new(m(1), KernelConfig::default(), reg),
    ];
    let mut pump = Pump::new(2);
    let mut out = Outbox::default();
    let sender = kernels[0]
        .spawn(
            Time(0),
            "requester",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    // Point the requester at a process that does not exist on m1.
    let ghost = ProcessId {
        creating_machine: m(1),
        local_uid: 42,
    };
    let init = kernel_msg(
        m(0),
        Link::to(sender.at(m(0))),
        tags::USER_BASE,
        Bytes::new(),
        vec![Link::to(ghost.at(m(1)))],
    );
    kernels[0].submit(Time(0), init, &mut pump, &mut out);
    settle(&mut kernels, &mut pump, &mut out);
    // m1 generated a non-deliverable notice; m0's kernel marked the link
    // dead and told the program.
    assert_eq!(kernels[1].stats().nondeliverable, 1);
    let proc = kernels[0].process(sender).unwrap();
    let dead = proc
        .links
        .iter()
        .filter(|(_, l)| l.target() == ghost)
        .all(|(_, l)| {
            l.attrs
                .contains(<LinkAttrs as demos_kernel::LinkAttrsExt>::DEAD)
        });
    assert!(dead);
    // The program received the informational notice.
    let state = proc.program.as_ref().unwrap().save();
    assert_eq!(state[1], 1, "program notified");
}

#[test]
fn link_update_applied_to_sender_table() {
    let reg = registry();
    let mut kernels = [Kernel::new(m(0), KernelConfig::default(), reg)];
    let mut pump = Pump::new(1);
    let mut out = Outbox::default();
    let pid = kernels[0]
        .spawn(
            Time(0),
            "recorder",
            &[],
            ImageLayout::default(),
            false,
            &mut out,
        )
        .unwrap();
    let target = ProcessId {
        creating_machine: m(2),
        local_uid: 9,
    };
    kernels[0]
        .install_link(pid, Link::to(target.at(m(2))))
        .unwrap();
    // A LinkUpdate arrives claiming the target moved to m3.
    let update = Message {
        header: MsgHeader {
            dest: demos_types::ProcessAddress::kernel_of(m(0)),
            src: ProcessId::kernel_of(m(2)),
            src_machine: m(2),
            msg_type: tags::LINK_MAINT,
            flags: MsgFlags::FROM_KERNEL,
            hops: 0,
        },
        links: vec![],
        payload: LinkMaintMsg::LinkUpdate {
            sender: pid,
            migrated: target,
            new_machine: m(3),
        }
        .to_bytes(),
        corr: demos_types::CorrId::NONE,
    };
    kernels[0].submit(Time(0), update, &mut pump, &mut out);
    let proc = kernels[0].process(pid).unwrap();
    for (_, l) in proc.links.iter().filter(|(_, l)| l.target() == target) {
        assert_eq!(l.addr.last_known_machine, m(3));
    }
    assert_eq!(kernels[0].stats().links_patched, 1);
}

#[test]
fn remote_create_process_via_mgmt() {
    let reg = registry();
    let mut kernels = vec![
        Kernel::new(m(0), KernelConfig::default(), Arc::clone(&reg)),
        Kernel::new(m(1), KernelConfig::default(), reg),
    ];
    let mut pump = Pump::new(2);
    let mut out = Outbox::default();
    // A recorder on m0 acts as the "process manager" reply sink.
    let pm = kernels[0]
        .spawn(
            Time(0),
            "recorder",
            &[],
            ImageLayout::default(),
            true,
            &mut out,
        )
        .unwrap();
    let req = demos_kernel::mgmt::KernelMgmt::CreateProcess {
        token: 9,
        name: "recorder".into(),
        state: Bytes::new(),
        layout: ImageLayout::default(),
        privileged: false,
    };
    let msg = Message {
        header: MsgHeader {
            dest: demos_types::ProcessAddress::kernel_of(m(1)),
            src: pm,
            src_machine: m(0),
            msg_type: local_tags::KERNEL_MGMT,
            flags: MsgFlags::NONE,
            hops: 0,
        },
        links: vec![Link::to(pm.at(m(0)))],
        payload: req.to_bytes(),
        corr: demos_types::CorrId::NONE,
    };
    kernels[0].submit(Time(0), msg, &mut pump, &mut out);
    settle(&mut kernels, &mut pump, &mut out);
    assert_eq!(kernels[1].nprocs(), 1, "process created remotely");
    // The reply (with a link to the new process) reached the pm recorder.
    let state = kernels[0]
        .process(pm)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    assert!(!state.is_empty(), "Created reply delivered");
    let proc = kernels[0].process(pm).unwrap();
    assert!(proc
        .links
        .iter()
        .any(|(_, l)| l.addr.last_known_machine == m(1)));
}
