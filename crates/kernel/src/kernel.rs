//! The per-processor kernel.
//!
//! "A copy of the kernel resides on each processor. Although each kernel
//! independently maintains its own resources …, all kernels cooperate in
//! providing a location-transparent, reliable, interprocess message
//! facility" (§2.1).
//!
//! [`Kernel`] owns one machine's process table, forwarding-address table,
//! run queue, transport endpoint and move-data engine. It is driven by the
//! simulation loop through a narrow surface:
//!
//! * [`Kernel::on_frame`] — a transport frame arrived;
//! * [`Kernel::run_next`] — give the CPU to the next runnable process;
//! * [`Kernel::on_time`] — fire due timers and retransmissions;
//! * [`Kernel::submit`] — the message delivery system (also the entry
//!   point for locally originated messages).
//!
//! The delivery system implements §4 directly: a message finds a live
//! process (enqueue, or kernel receive for `DELIVERTOKERNEL`), an
//! in-migration process (held on the queue), a *forwarding address*
//! (rewrite the location hint, resubmit, and send the §5 link-update
//! by-product), or nothing (non-deliverable notice). Migration policy and
//! protocol live in `demos-core`; this crate provides the mechanisms the
//! protocol composes (freeze, serve state, install, finish source side).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_net::{ChannelConfig, Endpoint, Frame, Phys};
use demos_types::proto::{AreaSel, KernelOp, LinkMaintMsg, MoveDataMsg};
use demos_types::wire::Wire;
use demos_types::{
    tags, CorrId, DemosError, Duration, Link, LinkIdx, MachineId, Message, MsgFlags, MsgHeader,
    ProcessAddress, ProcessId, Result, Time,
};

use crate::image::ImageLayout;
use crate::movedata::{MdAction, MoveData, MoveDataConfig, PullPurpose};
use crate::process::{ExecStatus, Process, TimerEntry};
use crate::program::{local_tags, Ctx, Delivered, Effects, MoveDataReq, Registry};
use crate::trace::{MigrationPhase, TraceEvent};

/// Kernel tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Maximum resident processes (capacity for migration accept/reject).
    pub max_processes: usize,
    /// Total image memory available, bytes.
    pub mem_capacity: u64,
    /// Base virtual CPU charged per program activation (context switch +
    /// minimal handler).
    pub base_msg_cpu: Duration,
    /// Move-data streaming parameters.
    pub movedata: MoveDataConfig,
    /// Reliable-channel parameters.
    pub channel: ChannelConfig,
    /// Forwarding addresses enabled (§4). `false` selects the paper's
    /// rejected alternative — return messages as non-deliverable — used as
    /// an ablation (experiment E8).
    pub forwarding: bool,
    /// Garbage-collect forwarding addresses via death notices propagated
    /// backwards along the migration path (§4). The paper left them in
    /// place ("we have not found it necessary"); both modes are supported.
    pub gc_forwarding: bool,
    /// Inter-kernel heartbeat interval. [`Duration::ZERO`] (the default)
    /// disables the failure detector entirely — the paper's DEMOS/MP had
    /// no automatic crash detection, so everything here is opt-in.
    pub heartbeat_every: Duration,
    /// Heartbeat intervals of silence before a watched peer is *suspected*
    /// (may still recover — counted as a false positive if it does).
    pub suspect_after: u32,
    /// Heartbeat intervals of silence before a suspected peer is confirmed
    /// *dead*. Terminal: the channel is purged and queued frames bounce.
    pub dead_after: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            max_processes: 64,
            mem_capacity: 16 << 20,
            base_msg_cpu: Duration::from_micros(100),
            movedata: MoveDataConfig::default(),
            channel: ChannelConfig::default(),
            forwarding: true,
            gc_forwarding: false,
            heartbeat_every: Duration::ZERO,
            suspect_after: 3,
            dead_after: 8,
        }
    }
}

/// Failure-detector counters (all zero while heartbeats are disabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Heartbeats transmitted to watched peers.
    pub beats_sent: u64,
    /// Heartbeats received from peers.
    pub beats_received: u64,
    /// Peers that crossed the suspicion threshold.
    pub suspicions: u64,
    /// Suspected peers later heard from again (premature suspicion).
    pub false_positives: u64,
    /// Peers confirmed dead (terminal).
    pub confirmed_dead: u64,
    /// Frames returned by the transport instead of being sent to a dead
    /// peer (queued at confirmation time or submitted afterwards).
    pub bounced: u64,
}

/// Liveness bookkeeping for one watched peer.
#[derive(Clone, Copy, Debug)]
struct PeerHealth {
    /// Last virtual time any frame arrived from this peer.
    last_heard: Time,
    /// Currently past the suspicion threshold.
    suspected: bool,
}

/// A forwarding address: "a degenerate process state, whose only contents
/// are the (last known) machine to which the process was migrated" (§3.1
/// step 7). `prev` is the backward pointer along the migration path used
/// for garbage collection (§4); `forwards` is bookkeeping for the
/// experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForwardEntry {
    /// Machine the process moved to.
    pub to: MachineId,
    /// Machine the process had previously migrated from, if any.
    pub prev: Option<MachineId>,
    /// Messages forwarded through this entry.
    pub forwards: u64,
}

/// Message/byte counts for one traffic category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCount {
    /// Messages transmitted.
    pub msgs: u64,
    /// Total wire bytes of those messages.
    pub bytes: u64,
}

impl MsgCount {
    fn add(&mut self, bytes: usize) {
        self.msgs += 1;
        self.bytes += bytes as u64;
    }
}

/// Remote traffic broken down by protocol category — the classification
/// §6's cost analysis uses (administrative messages vs. block data
/// transfers vs. ordinary messages).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Kernel control operations (`KERNEL_OP`, incl. MigrateRequest #1).
    pub kernel_op: MsgCount,
    /// Migration protocol messages (#2, #3, #7, #8, #9).
    pub migrate: MsgCount,
    /// Move-data read/write requests (#4–#6 for migrations).
    pub md_req: MsgCount,
    /// Move-data data packets.
    pub md_data: MsgCount,
    /// Move-data acknowledgements.
    pub md_ack: MsgCount,
    /// Move-data completion/abort messages.
    pub md_done: MsgCount,
    /// Link maintenance (updates, non-deliverable, death notices).
    pub link_maint: MsgCount,
    /// Kernel management (process creation).
    pub mgmt: MsgCount,
    /// System-server and user messages.
    pub user: MsgCount,
}

impl TrafficBreakdown {
    /// Administrative migration messages: the paper's "9 such messages"
    /// (request + protocol + the three state-pull requests).
    pub fn admin(&self) -> MsgCount {
        MsgCount {
            msgs: self.kernel_op.msgs + self.migrate.msgs + self.md_req.msgs,
            bytes: self.kernel_op.bytes + self.migrate.bytes + self.md_req.bytes,
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, o: &TrafficBreakdown) {
        for (a, b) in [
            (&mut self.kernel_op, &o.kernel_op),
            (&mut self.migrate, &o.migrate),
            (&mut self.md_req, &o.md_req),
            (&mut self.md_data, &o.md_data),
            (&mut self.md_ack, &o.md_ack),
            (&mut self.md_done, &o.md_done),
            (&mut self.link_maint, &o.link_maint),
            (&mut self.mgmt, &o.mgmt),
            (&mut self.user, &o.user),
        ] {
            a.msgs += b.msgs;
            a.bytes += b.bytes;
        }
    }
}

/// Counters kept by each kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Remote traffic by category.
    pub traffic: TrafficBreakdown,
    /// Messages entering the delivery system here.
    pub submitted: u64,
    /// Messages enqueued for local processes.
    pub delivered_local: u64,
    /// Messages transmitted to another machine.
    pub transmitted: u64,
    /// Messages redirected by a forwarding address (§4).
    pub forwarded: u64,
    /// Link-update messages sent (§5).
    pub link_updates_sent: u64,
    /// Link-update messages applied.
    pub link_updates_applied: u64,
    /// Individual links rewritten by updates.
    pub links_patched: u64,
    /// Messages that could not be delivered.
    pub nondeliverable: u64,
    /// `DELIVERTOKERNEL` messages received by this kernel.
    pub kernel_received: u64,
    /// Processes spawned here.
    pub spawned: u64,
    /// Processes exited here.
    pub exited: u64,
    /// Program activations run.
    pub activations: u64,
}

/// Completion of a kernel-purpose move-data pull (migration state
/// transfer), surfaced to the migration engine.
#[derive(Debug, Clone)]
pub struct KernelPullDone {
    /// Cookie given at [`Kernel::start_kernel_pull`].
    pub cookie: u64,
    /// Operation id.
    pub op: u16,
    /// The bytes (empty on failure).
    pub data: Vec<u8>,
    /// 0 = success.
    pub status: u8,
}

/// Side-channel outputs of one kernel invocation, drained by the caller
/// (the simulation loop / migration engine).
#[derive(Debug, Default)]
pub struct Outbox {
    /// Trace events (timestamped by the harness).
    pub trace: Vec<TraceEvent>,
    /// Messages the kernel does not interpret itself: the migration
    /// protocol (`MIGRATE` tag) and `MigrateRequest` control ops, consumed
    /// by the `demos-core` migration engine.
    pub migration_inbox: Vec<Message>,
    /// Completions of kernel-purpose move-data pulls.
    pub pull_done: Vec<KernelPullDone>,
}

/// Sizes reported in a migration offer (message #2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationSizes {
    /// Resident (non-swappable) state bytes.
    pub resident: u32,
    /// Swappable state bytes.
    pub swappable: u32,
    /// Memory image bytes (flattened).
    pub image: u32,
    /// Messages pending on the queue at freeze time.
    pub queued: u16,
}

/// The per-machine kernel.
pub struct Kernel {
    machine: MachineId,
    cfg: KernelConfig,
    registry: Arc<Registry>,
    endpoint: Endpoint,
    md: MoveData,
    procs: BTreeMap<ProcessId, Process>,
    forwarding: BTreeMap<ProcessId, ForwardEntry>,
    run_queue: VecDeque<ProcessId>,
    reserved: BTreeMap<u16, u64>,
    next_slot: u16,
    next_uid: u32,
    next_corr: u64,
    mem_used: u64,
    stats: KernelStats,
    hb_peers: BTreeMap<MachineId, PeerHealth>,
    next_hb_at: Option<Time>,
    hb_seq: u64,
    dead: BTreeSet<MachineId>,
    dead_events: Vec<(MachineId, Time)>,
    det_stats: DetectorStats,
    /// Min-heap over process-timer deadlines, lazily invalidated: an entry
    /// `(t, pid)` is live iff `procs[pid].next_timer() == Some(t)` when it
    /// is inspected. Entries are pushed whenever a process's earliest
    /// timer may have changed (new timers in `run_next`, residual timers
    /// after `on_time`, migrated-in timers) and never removed eagerly —
    /// stale ones are discarded on peek/pop. Makes
    /// [`Kernel::next_deadline`] an O(log n) peek and [`Kernel::on_time`]
    /// pop-due-only instead of a full process-table scan.
    timer_heap: BinaryHeap<Reverse<(Time, ProcessId)>>,
}

impl Kernel {
    /// Create the kernel for `machine`.
    pub fn new(machine: MachineId, cfg: KernelConfig, registry: Arc<Registry>) -> Self {
        Kernel {
            machine,
            endpoint: Endpoint::new(machine, cfg.channel),
            md: MoveData::new(cfg.movedata),
            cfg,
            registry,
            procs: BTreeMap::new(),
            forwarding: BTreeMap::new(),
            run_queue: VecDeque::new(),
            reserved: BTreeMap::new(),
            next_slot: 1,
            next_uid: 1,
            next_corr: 1,
            mem_used: 0,
            stats: KernelStats::default(),
            hb_peers: BTreeMap::new(),
            next_hb_at: None,
            hb_seq: 0,
            dead: BTreeSet::new(),
            dead_events: Vec::new(),
            det_stats: DetectorStats::default(),
            timer_heap: BinaryHeap::new(),
        }
    }

    /// This kernel's machine.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Monotone identifier watermarks — next process uid, next message
    /// correlation serial. This is the boot record a processor keeps in
    /// stable storage: a fresh incarnation must mint *above* these, or
    /// its ids collide with the previous incarnation's still-circulating
    /// ones (a re-minted correlation id makes two distinct messages look
    /// like a duplicate; a re-minted uid collides with a re-homed
    /// process).
    pub fn id_watermarks(&self) -> (u32, u64) {
        (self.next_uid, self.next_corr)
    }

    /// Resume identifier minting above a previous incarnation's
    /// watermarks (reboot path; see [`Kernel::id_watermarks`]).
    pub fn resume_id_watermarks(&mut self, uid: u32, corr: u64) {
        self.next_uid = self.next_uid.max(uid);
        self.next_corr = self.next_corr.max(corr);
    }

    /// This kernel's process identity (local uid 0).
    pub fn kernel_pid(&self) -> ProcessId {
        ProcessId::kernel_of(self.machine)
    }

    /// Configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Image memory in use, bytes (including reservations).
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Resident process count.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Run-queue length (load metric).
    pub fn runq_len(&self) -> usize {
        self.run_queue.len()
    }

    /// Total messages queued for *runnable* residents (excludes processes
    /// frozen for migration, whose held messages are reported by
    /// [`Kernel::pending_queue_len`]).
    pub fn msg_queue_len(&self) -> usize {
        self.procs
            .values()
            .filter(|p| !p.in_migration)
            .map(|p| p.queue.len())
            .sum()
    }

    /// Messages held on in-migration processes' queues (§3.1 step 1):
    /// the backlog step 6 will forward. Zero outside migrations.
    pub fn pending_queue_len(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.in_migration)
            .map(|p| p.queue.len())
            .sum()
    }

    /// Total link-table entries across resident processes.
    pub fn link_table_len(&self) -> usize {
        self.procs.values().map(|p| p.links.len()).sum()
    }

    /// Reliable-channel health counters (retransmits, duplicate acks,
    /// dedup drops), cumulative for this machine's endpoint.
    pub fn channel_stats(&self) -> demos_net::ChannelStats {
        self.endpoint.channel_stats()
    }

    /// Iterate over resident process ids.
    pub fn pids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.procs.keys().copied()
    }

    /// Immutable access to a resident process.
    pub fn process(&self, pid: ProcessId) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable access to a resident process (tests, bootstrap, engine).
    pub fn process_mut(&mut self, pid: ProcessId) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// The forwarding table (read-only view).
    pub fn forwarding_table(&self) -> &BTreeMap<ProcessId, ForwardEntry> {
        &self.forwarding
    }

    /// Where this machine's forwarding table redirects `pid`, if an entry
    /// exists — one hop of the chain walk used by the chaos acyclicity
    /// checker.
    pub fn forwarding_next(&self, pid: ProcessId) -> Option<MachineId> {
        self.forwarding.get(&pid).map(|e| e.to)
    }

    /// Insert a forwarding entry (crash-recovery path; migrations install
    /// theirs through [`Kernel::finish_source_side`]).
    pub(crate) fn forwarding_insert(&mut self, pid: ProcessId, to: MachineId) {
        self.forwarding.insert(
            pid,
            ForwardEntry {
                to,
                prev: None,
                forwards: 0,
            },
        );
    }

    /// Reset the reliable channel to `peer` (connection re-establishment
    /// after the peer is revived with fresh sequence numbers), starting
    /// connection incarnation `epoch` — both ends of the pair must be
    /// handed the same value, strictly above anything the pair used
    /// before, so stragglers of the old incarnation are recognizably
    /// stale. Also clears any detector verdict so a revived peer is
    /// watched afresh.
    pub fn reset_channel(&mut self, peer: MachineId, epoch: u32) {
        self.endpoint.reset_peer(peer, epoch);
        self.dead.remove(&peer);
        if let Some(ph) = self.hb_peers.get_mut(&peer) {
            ph.suspected = false;
        }
    }

    /// Current connection incarnation of the channel to `peer`.
    pub fn channel_epoch(&self, peer: MachineId) -> u32 {
        self.endpoint.peer_epoch(peer)
    }

    /// A revived peer is alive by definition: reset its channel (onto the
    /// new connection incarnation `epoch`) and restart liveness tracking
    /// from `now`.
    pub fn peer_revived(&mut self, now: Time, peer: MachineId, epoch: u32) {
        self.reset_channel(peer, epoch);
        if let Some(ph) = self.hb_peers.get_mut(&peer) {
            ph.last_heard = now;
            ph.suspected = false;
        }
    }

    /// Start heartbeating `peers` (typically every other machine in the
    /// cluster). No-op while [`KernelConfig::heartbeat_every`] is zero.
    pub fn watch_peers(&mut self, now: Time, peers: impl IntoIterator<Item = MachineId>) {
        for peer in peers {
            if peer == self.machine {
                continue;
            }
            self.hb_peers.insert(
                peer,
                PeerHealth {
                    last_heard: now,
                    suspected: false,
                },
            );
        }
        if self.cfg.heartbeat_every > Duration::ZERO && !self.hb_peers.is_empty() {
            self.next_hb_at = Some(now + self.cfg.heartbeat_every);
        }
    }

    /// Stop heartbeating and failure detection (harness drain phases: a
    /// cluster with an active detector never goes fully quiescent).
    /// Verdicts already reached are kept.
    pub fn stop_heartbeats(&mut self) {
        self.next_hb_at = None;
    }

    /// Failure-detector counters.
    pub fn detector_stats(&self) -> DetectorStats {
        self.det_stats
    }

    /// Whether this kernel has confirmed `peer` dead.
    pub fn peer_dead(&self, peer: MachineId) -> bool {
        self.dead.contains(&peer)
    }

    /// Peers this kernel has confirmed dead, in machine-id order.
    pub fn dead_peers(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.dead.iter().copied()
    }

    /// Drain the (machine, confirmation time) events recorded since the
    /// last call — the recovery manager's trigger.
    pub fn take_confirmed_dead(&mut self) -> Vec<(MachineId, Time)> {
        std::mem::take(&mut self.dead_events)
    }

    /// A frame arrived from `from`: refresh liveness. A suspected peer
    /// heard from again was a premature suspicion; a dead verdict is
    /// terminal and is not revisited here.
    fn peer_heard(&mut self, now: Time, from: MachineId) {
        if self.dead.contains(&from) {
            return;
        }
        if let Some(ph) = self.hb_peers.get_mut(&from) {
            ph.last_heard = now;
            if ph.suspected {
                ph.suspected = false;
                self.det_stats.false_positives += 1;
            }
        }
    }

    /// Confirm `peer` dead: purge its channel (queued frames bounce),
    /// drop forwarding entries that would route *into* it (a stale chain
    /// through a dead machine black-holes; better to fall through to
    /// non-deliverable or a recovery entry), and record the event.
    fn confirm_dead(&mut self, now: Time, peer: MachineId) {
        if !self.dead.insert(peer) {
            return;
        }
        self.det_stats.confirmed_dead += 1;
        self.dead_events.push((peer, now));
        let bounces = self.endpoint.mark_dead(peer);
        self.det_stats.bounced += bounces.len() as u64;
        self.forwarding.retain(|_, e| e.to != peer);
    }

    /// Send heartbeats and evaluate silence thresholds if the interval
    /// elapsed.
    fn heartbeat_tick(&mut self, now: Time, phys: &mut dyn Phys) {
        let every = self.cfg.heartbeat_every;
        if every == Duration::ZERO || self.hb_peers.is_empty() {
            return;
        }
        let due = match self.next_hb_at {
            Some(t) if t <= now => t,
            _ => return,
        };
        self.hb_seq += 1;
        let seq = self.hb_seq;
        let suspect_at = every.saturating_mul(self.cfg.suspect_after as u64);
        let dead_at = every.saturating_mul(self.cfg.dead_after as u64);
        let peers: Vec<MachineId> = self.hb_peers.keys().copied().collect();
        for peer in peers {
            if self.dead.contains(&peer) {
                continue;
            }
            let beat = self.kernel_msg(
                ProcessAddress::kernel_of(peer),
                tags::LINK_MAINT,
                LinkMaintMsg::Heartbeat {
                    from: self.machine,
                    seq,
                }
                .to_bytes(),
                vec![],
            );
            self.transmit(now, peer, &beat, phys);
            self.det_stats.beats_sent += 1;
            let Some(ph) = self.hb_peers.get_mut(&peer) else {
                continue;
            };
            let silent = now.since(ph.last_heard);
            if silent >= dead_at {
                self.confirm_dead(now, peer);
            } else if silent >= suspect_at && !ph.suspected {
                ph.suspected = true;
                self.det_stats.suspicions += 1;
            }
        }
        let mut next = due + every;
        while next <= now {
            next += every;
        }
        self.next_hb_at = Some(next);
    }

    /// Whether the transport has unacknowledged frames in flight.
    pub fn transport_quiescent(&self) -> bool {
        self.endpoint.quiescent()
    }

    /// Per-peer transmit backlog (`(peer, unacked, pending, state)`),
    /// for diagnosing a non-quiescent endpoint.
    pub fn transport_backlog(&self) -> Vec<(MachineId, usize, usize, demos_net::PeerState)> {
        self.endpoint.backlog()
    }

    // ------------------------------------------------------------------
    // Spawning and bootstrap
    // ------------------------------------------------------------------

    /// Create a process running registered program `name` with initial
    /// serialized `state`.
    pub fn spawn(
        &mut self,
        now: Time,
        name: &str,
        state: &[u8],
        layout: ImageLayout,
        privileged: bool,
        out: &mut Outbox,
    ) -> Result<ProcessId> {
        if self.procs.len() >= self.cfg.max_processes {
            return Err(DemosError::Capacity(self.machine));
        }
        let program = self.registry.instantiate(name, state)?;
        let pid = ProcessId {
            creating_machine: self.machine,
            local_uid: self.next_uid,
        };
        self.next_uid += 1;
        let proc = Process::new(pid, name, program, layout, privileged, now);
        let image_len = proc.image.total_len() as u64;
        if self.mem_used + image_len > self.cfg.mem_capacity {
            return Err(DemosError::Capacity(self.machine));
        }
        self.mem_used += image_len;
        self.procs.insert(pid, proc);
        self.stats.spawned += 1;
        out.trace.push(TraceEvent::Spawned {
            pid,
            program: name.to_string(),
        });
        self.schedule(pid);
        Ok(pid)
    }

    /// Install a link value into a process's table (bootstrap: handing the
    /// first processes their switchboard links, etc.).
    pub fn install_link(&mut self, pid: ProcessId, link: Link) -> Result<LinkIdx> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(DemosError::NoSuchProcess(pid))?;
        Ok(proc.links.insert(link))
    }

    /// Mint a link to a local process (kernel participates in all link
    /// operations; used at bootstrap and by `CreateProcess` replies).
    pub fn mint_link(&self, pid: ProcessId) -> Result<Link> {
        if !self.procs.contains_key(&pid) {
            return Err(DemosError::NoSuchProcess(pid));
        }
        Ok(Link::to(pid.at(self.machine)))
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn schedule(&mut self, pid: ProcessId) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            if proc.runnable() && !proc.in_runq {
                proc.in_runq = true;
                self.run_queue.push_back(pid);
            }
        }
    }

    fn wake(&mut self, pid: ProcessId) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            if proc.status == ExecStatus::Waiting {
                proc.status = ExecStatus::Ready;
            }
        }
        self.schedule(pid);
    }

    /// Whether the run queue may contain work (may report a false positive
    /// for stale entries; `run_next` skips them).
    pub fn has_runnable(&self) -> bool {
        !self.run_queue.is_empty()
    }

    /// Run one program activation: deliver the next queued message (or
    /// `on_start`) to the next runnable process. Returns the pid and the
    /// virtual CPU consumed, or `None` if nothing was runnable.
    pub fn run_next(
        &mut self,
        now: Time,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Option<(ProcessId, Duration)> {
        loop {
            let pid = self.run_queue.pop_front()?;
            let Some(proc) = self.procs.get_mut(&pid) else {
                continue;
            };
            proc.in_runq = false;
            if !proc.runnable() {
                continue;
            }
            // A DELIVERTOKERNEL message held while the process was in
            // migration (§3.1 step 1) is received by the kernel now that
            // "normal message receiving can continue" (§2.2) — it never
            // reaches the program.
            if proc.started
                && proc
                    .queue
                    .front()
                    .is_some_and(|m| m.header.flags.contains(MsgFlags::DELIVER_TO_KERNEL))
            {
                let Some(msg) = proc.queue.pop_front() else {
                    continue;
                };
                let cost = self.cfg.base_msg_cpu.max(Duration::from_micros(1));
                if let Some(proc) = self.procs.get_mut(&pid) {
                    proc.cpu_used += cost;
                    if proc.queue.is_empty() {
                        proc.status = ExecStatus::Waiting;
                    }
                }
                self.stats.kernel_received += 1;
                out.trace.push(TraceEvent::KernelReceived {
                    corr: msg.corr,
                    pid,
                    msg_type: msg.header.msg_type,
                });
                self.handle_control(now, pid, msg, phys, out);
                self.schedule(pid);
                return Some((pid, cost));
            }
            self.stats.activations += 1;
            let mut effects = Effects::default();
            let Some(mut program) = proc.program.take() else {
                // Defensive: a runnable process should always hold its
                // program; park it rather than abort the kernel.
                proc.status = ExecStatus::Waiting;
                continue;
            };
            let machine = self.machine;
            if !proc.started {
                proc.started = true;
                let mut ctx = Ctx::new(now, pid, machine, &mut proc.links, &mut effects);
                program.on_start(&mut ctx);
            } else {
                let Some(msg) = proc.queue.pop_front() else {
                    // Defensive: restore the invariant instead of panicking.
                    proc.program = Some(program);
                    proc.status = ExecStatus::Waiting;
                    continue;
                };
                proc.msgs_handled += 1;
                if msg.header.msg_type == local_tags::TIMER {
                    let token = decode_timer_token(&msg.payload);
                    let mut ctx = Ctx::new(now, pid, machine, &mut proc.links, &mut effects);
                    program.on_timer(&mut ctx, token);
                } else {
                    let links: Vec<LinkIdx> =
                        msg.links.iter().map(|l| proc.links.insert(*l)).collect();
                    let delivered = Delivered {
                        from: msg.header.src,
                        msg_type: msg.header.msg_type,
                        payload: msg.payload,
                        links,
                        forwarded: msg.header.flags.contains(MsgFlags::FORWARDED),
                    };
                    let mut ctx = Ctx::new(now, pid, machine, &mut proc.links, &mut effects);
                    program.on_message(&mut ctx, delivered);
                }
            }
            let Some(proc) = self.procs.get_mut(&pid) else {
                continue;
            };
            proc.program = Some(program);
            // Never zero: virtual time must advance per activation or the
            // event loop could livelock on a zero-cost message cycle.
            let cost = (self.cfg.base_msg_cpu + effects.cpu).max(Duration::from_micros(1));
            proc.cpu_used += cost;
            let armed_timers = !effects.timers.is_empty();
            for (delay, token) in effects.timers.drain(..) {
                proc.timers.push(TimerEntry {
                    at: now + delay,
                    token,
                });
            }
            if armed_timers {
                // Index the (possibly new) earliest deadline. If the old
                // minimum still stands its heap entry remains live and this
                // push is a harmless duplicate.
                if let Some(t) = proc.next_timer() {
                    self.timer_heap.push(Reverse((t, pid)));
                }
            }
            if !effects.exit {
                proc.status = if proc.queue.is_empty() {
                    ExecStatus::Waiting
                } else {
                    ExecStatus::Ready
                };
            }
            for text in effects.logs.drain(..) {
                out.trace.push(TraceEvent::Log { pid, text });
            }
            for m in effects.sends.drain(..) {
                self.submit(now, m, phys, out);
            }
            for req in effects.movedata.drain(..) {
                self.start_user_movedata(now, pid, req, phys, out);
            }
            if effects.exit {
                self.kill(now, pid, phys, out);
            } else {
                self.schedule(pid);
            }
            return Some((pid, cost));
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest future deadline this kernel cares about: process timers
    /// and transport retransmissions. Authoritative O(procs + peers) scan
    /// kept for callers that only hold `&self` (the native runtime); the
    /// simulation hot loop uses the indexed [`Kernel::next_deadline`].
    pub fn next_timer_at(&self) -> Option<Time> {
        let proc_min = self.procs.values().filter_map(|p| p.next_timer()).min();
        [proc_min, self.endpoint.next_timeout(), self.next_hb_at]
            .into_iter()
            .flatten()
            .min()
    }

    /// Whether heap entry `(t, pid)` still describes `pid`'s earliest
    /// timer. Killed or migrated-away processes invalidate their entries
    /// automatically.
    fn timer_entry_valid(&self, t: Time, pid: ProcessId) -> bool {
        self.procs
            .get(&pid)
            .is_some_and(|p| p.next_timer() == Some(t))
    }

    /// Indexed equivalent of [`Kernel::next_timer_at`]: O(log n) peeks
    /// over the process-timer and retransmission heaps plus the O(1)
    /// heartbeat field, discarding stale heap entries on the way. Debug
    /// builds cross-check against the full scan.
    pub fn next_deadline(&mut self) -> Option<Time> {
        let proc_min = loop {
            match self.timer_heap.peek() {
                Some(&Reverse((t, pid))) => {
                    if self.timer_entry_valid(t, pid) {
                        break Some(t);
                    }
                    self.timer_heap.pop();
                }
                None => break None,
            }
        };
        let r = [
            proc_min,
            self.endpoint.next_timeout_indexed(),
            self.next_hb_at,
        ]
        .into_iter()
        .flatten()
        .min();
        debug_assert_eq!(r, self.next_timer_at(), "timer index diverged from scan");
        r
    }

    /// Fire everything due at or before `now`.
    pub fn on_time(&mut self, now: Time, phys: &mut dyn Phys, _out: &mut Outbox) {
        let bounces = self.endpoint.on_timeout(now, phys);
        self.det_stats.bounced += bounces.len() as u64;
        self.heartbeat_tick(now, phys);
        // Pop due, still-live entries instead of scanning every process.
        // Sorting restores the pre-index order (ascending pid), keeping
        // synthetic TIMER message creation — and thus the trace — byte
        // identical to the scan-everything loop.
        let mut due_pids: Vec<ProcessId> = Vec::new();
        while let Some(&Reverse((t, pid))) = self.timer_heap.peek() {
            if !self.timer_entry_valid(t, pid) {
                self.timer_heap.pop();
                continue;
            }
            if t > now {
                break;
            }
            self.timer_heap.pop();
            due_pids.push(pid);
        }
        due_pids.sort_unstable();
        due_pids.dedup();
        for pid in due_pids {
            let Some(proc) = self.procs.get_mut(&pid) else {
                continue;
            };
            let due = proc.take_due_timers(now);
            // Re-index the earliest residual (future) timer, if any.
            if let Some(t) = proc.next_timer() {
                self.timer_heap.push(Reverse((t, pid)));
            }
            for t in due {
                let msg = self.synthetic_msg(pid, local_tags::TIMER, encode_timer_token(t.token));
                self.enqueue_local_quiet(pid, msg);
                self.wake(pid);
            }
        }
    }

    fn synthetic_msg(&self, pid: ProcessId, msg_type: u16, payload: Bytes) -> Message {
        Message {
            header: MsgHeader {
                dest: pid.at(self.machine),
                src: self.kernel_pid(),
                src_machine: self.machine,
                msg_type,
                flags: MsgFlags::FROM_KERNEL,
                hops: 0,
            },
            links: vec![],
            payload,
            corr: CorrId::NONE,
        }
    }

    fn enqueue_local_quiet(&mut self, pid: ProcessId, msg: Message) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            proc.queue.push_back(msg);
        }
    }

    // ------------------------------------------------------------------
    // Transport
    // ------------------------------------------------------------------

    /// A frame arrived from the physical network.
    pub fn on_frame(
        &mut self,
        now: Time,
        from: MachineId,
        frame: Frame,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        self.peer_heard(now, from);
        let delivered = self.endpoint.on_frame(now, from, frame, phys);
        for (corr, bytes) in delivered {
            match Message::from_bytes(&bytes) {
                Ok(mut msg) => {
                    // The correlation id travelled alongside the wire bytes
                    // (frame metadata, not part of the encoding); re-attach
                    // it so the journey continues under the same id.
                    msg.corr = corr;
                    self.submit(now, msg, phys, out);
                }
                Err(e) => {
                    debug_assert!(false, "undecodable message on reliable channel: {e}");
                }
            }
        }
    }

    fn transmit(&mut self, now: Time, to: MachineId, msg: &Message, phys: &mut dyn Phys) {
        self.stats.transmitted += 1;
        let size = msg.wire_size();
        let t = &mut self.stats.traffic;
        match msg.header.msg_type {
            tags::KERNEL_OP => t.kernel_op.add(size),
            tags::MIGRATE => t.migrate.add(size),
            tags::MOVE_DATA => match msg.payload.first() {
                Some(1) | Some(2) => t.md_req.add(size),
                Some(3) => t.md_data.add(size),
                Some(4) => t.md_ack.add(size),
                _ => t.md_done.add(size),
            },
            tags::LINK_MAINT => t.link_maint.add(size),
            local_tags::KERNEL_MGMT => t.mgmt.add(size),
            _ => t.user.add(size),
        }
        // Communication accounting for the affinity policy: charge the
        // *sending* process for traffic that actually leaves the machine.
        // (A send to a colocated process — even over a stale link — never
        // reaches the transport, so it never counts as remote.)
        if !msg.header.flags.contains(MsgFlags::FROM_KERNEL)
            && msg.header.src_machine == self.machine
        {
            if let Some(proc) = self.procs.get_mut(&msg.header.src) {
                *proc.bytes_sent_to.entry(to).or_insert(0) += msg.wire_size() as u64;
            }
        }
        if self
            .endpoint
            .send(now, to, msg.to_bytes(), msg.corr, phys)
            .is_some()
        {
            // The channel to a confirmed-dead peer accepts nothing; the
            // frame comes straight back as a local bounce.
            self.det_stats.bounced += 1;
        }
    }

    // ------------------------------------------------------------------
    // The message delivery system (§4)
    // ------------------------------------------------------------------

    /// Deliver (or route) one message. This is the single entry point for
    /// messages originated locally *and* arriving from the network.
    pub fn submit(&mut self, now: Time, mut msg: Message, phys: &mut dyn Phys, out: &mut Outbox) {
        self.stats.submitted += 1;
        // Causal tracing: the first kernel to see a message stamps it with
        // a fresh correlation id. Resubmissions (forwarding, pending-queue
        // flush in step 6) and network arrivals already carry one, so the
        // id identifies the message's whole journey across machines.
        if msg.corr.is_none() {
            msg.corr = CorrId::new(self.machine, self.next_corr);
            self.next_corr += 1;
            out.trace.push(TraceEvent::Submitted {
                corr: msg.corr,
                dest: msg.header.dest.pid,
                msg_type: msg.header.msg_type,
            });
        }
        let dest = msg.header.dest;
        // 1. Is the destination process resident here (by pid, regardless
        //    of the — possibly stale — location hint)?
        if let Some(proc) = self.procs.get(&dest.pid) {
            let dtk = msg.header.flags.contains(MsgFlags::DELIVER_TO_KERNEL);
            if dtk && !proc.in_migration {
                // "On arrival at the destination process's message queue,
                // the message is received by the kernel" (§2.2).
                self.stats.kernel_received += 1;
                out.trace.push(TraceEvent::KernelReceived {
                    corr: msg.corr,
                    pid: dest.pid,
                    msg_type: msg.header.msg_type,
                });
                self.handle_control(now, dest.pid, msg, phys, out);
            } else {
                // Normal delivery — or an in-migration hold: "messages
                // arriving for the migrating process, including
                // DELIVERTOKERNEL messages, will be placed on its message
                // queue" (§3.1 step 1).
                self.stats.delivered_local += 1;
                out.trace.push(TraceEvent::Enqueued {
                    corr: msg.corr,
                    pid: dest.pid,
                    msg_type: msg.header.msg_type,
                    forwarded: msg.header.flags.contains(MsgFlags::FORWARDED),
                    hops: msg.header.hops,
                });
                if let Some(proc) = self.procs.get_mut(&dest.pid) {
                    proc.queue.push_back(msg);
                    self.wake(dest.pid);
                }
            }
            return;
        }
        // 2. Kernel-addressed messages.
        if dest.pid.is_kernel() {
            if dest.pid.kernel_machine() == Some(self.machine) {
                self.handle_kernel_msg(now, msg, phys, out);
            } else if let Some(m) = dest.pid.kernel_machine() {
                self.transmit(now, m, &msg, phys);
            }
            return;
        }
        // 3. Not local: route towards the location hint — unless the hint
        //    names a machine this kernel has confirmed dead *and* recovery
        //    has installed a local forwarding entry, in which case fall
        //    through to step 4 so the stale hint is repaired here (a dead
        //    machine can never run its own forwarding addresses).
        if dest.last_known_machine != self.machine {
            let reroute = self.cfg.forwarding
                && self.dead.contains(&dest.last_known_machine)
                && self.forwarding.contains_key(&dest.pid);
            if !reroute {
                self.transmit(now, dest.last_known_machine, &msg, phys);
                return;
            }
        }
        // 4. Addressed here but absent: forwarding address? (§4)
        if self.cfg.forwarding {
            if let Some(entry) = self.forwarding.get_mut(&dest.pid) {
                entry.forwards += 1;
                let to = entry.to;
                self.stats.forwarded += 1;
                out.trace.push(TraceEvent::ForwardedMessage {
                    corr: msg.corr,
                    pid: dest.pid,
                    to,
                    msg_type: msg.header.msg_type,
                });
                msg.header.dest = dest.rehomed(to);
                msg.header.flags = msg.header.flags | MsgFlags::FORWARDED;
                msg.header.hops = msg.header.hops.saturating_add(1);
                // §5 by-product: tell the sender's kernel where the process
                // went so it can patch the sender's links.
                let sender = msg.header.src;
                let sender_machine = msg.header.src_machine;
                let from_kernel = msg.header.flags.contains(MsgFlags::FROM_KERNEL);
                if !from_kernel && !sender.is_kernel() {
                    self.stats.link_updates_sent += 1;
                    out.trace.push(TraceEvent::LinkUpdateSent {
                        corr: msg.corr,
                        sender,
                        migrated: dest.pid,
                        new_machine: to,
                    });
                    let mut update = self.kernel_msg(
                        ProcessAddress::kernel_of(sender_machine),
                        tags::LINK_MAINT,
                        LinkMaintMsg::LinkUpdate {
                            sender,
                            migrated: dest.pid,
                            new_machine: to,
                        }
                        .to_bytes(),
                        vec![],
                    );
                    // The §5 by-product inherits the chased message's
                    // correlation id: cause (forwarded message) and effect
                    // (link repair) are one traced journey.
                    update.corr = msg.corr;
                    self.submit(now, update, phys, out);
                }
                self.submit(now, msg, phys, out);
                return;
            }
        }
        // 5. Non-deliverable (dead process — or the ablation mode, §4).
        self.stats.nondeliverable += 1;
        out.trace.push(TraceEvent::NonDeliverable {
            corr: msg.corr,
            pid: dest.pid,
            msg_type: msg.header.msg_type,
        });
        let sender = msg.header.src;
        if !msg.header.flags.contains(MsgFlags::FROM_KERNEL) && !sender.is_kernel() {
            let reason = if self.cfg.forwarding { 0 } else { 1 };
            let notice = Message {
                header: MsgHeader {
                    dest: sender.at(msg.header.src_machine),
                    src: self.kernel_pid(),
                    src_machine: self.machine,
                    msg_type: tags::LINK_MAINT,
                    flags: MsgFlags::DELIVER_TO_KERNEL | MsgFlags::FROM_KERNEL,
                    hops: 0,
                },
                links: vec![],
                payload: LinkMaintMsg::NonDeliverable {
                    dest: dest.pid,
                    msg_type: msg.header.msg_type,
                    reason,
                }
                .to_bytes(),
                corr: CorrId::NONE,
            };
            self.submit(now, notice, phys, out);
        }
    }

    /// Build a kernel-originated message.
    fn kernel_msg(
        &self,
        dest: ProcessAddress,
        msg_type: u16,
        payload: Bytes,
        links: Vec<Link>,
    ) -> Message {
        Message {
            header: MsgHeader {
                dest,
                src: self.kernel_pid(),
                src_machine: self.machine,
                msg_type,
                flags: MsgFlags::FROM_KERNEL,
                hops: 0,
            },
            links,
            payload,
            corr: CorrId::NONE,
        }
    }

    /// Send a migration protocol message to another machine's kernel
    /// (used by the `demos-core` migration engine).
    pub fn send_migrate_msg(
        &mut self,
        now: Time,
        to: MachineId,
        payload: Bytes,
        links: Vec<Link>,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let msg = self.kernel_msg(ProcessAddress::kernel_of(to), tags::MIGRATE, payload, links);
        self.submit(now, msg, phys, out);
    }

    /// Send an arbitrary kernel-originated message to a process address
    /// (used by the migration engine for the `Done` notification, which
    /// travels over the requester's reply link).
    pub fn send_kernel_to(
        &mut self,
        now: Time,
        link: Link,
        msg_type: u16,
        payload: Bytes,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let mut flags = MsgFlags::FROM_KERNEL;
        if link.is_dtk() {
            flags = flags | MsgFlags::DELIVER_TO_KERNEL;
        }
        let msg = Message {
            header: MsgHeader {
                dest: link.addr,
                src: self.kernel_pid(),
                src_machine: self.machine,
                msg_type,
                flags,
                hops: 0,
            },
            links: vec![],
            payload,
            corr: CorrId::NONE,
        };
        self.submit(now, msg, phys, out);
    }

    // ------------------------------------------------------------------
    // Control operations (DELIVERTOKERNEL receives, §2.2)
    // ------------------------------------------------------------------

    fn handle_control(
        &mut self,
        now: Time,
        pid: ProcessId,
        msg: Message,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        match msg.header.msg_type {
            tags::KERNEL_OP => {
                let Ok(op) = KernelOp::from_bytes(&msg.payload) else {
                    return;
                };
                match op {
                    KernelOp::Suspend => self.suspend(pid),
                    KernelOp::Resume => self.resume(pid),
                    KernelOp::Kill => self.kill(now, pid, phys, out),
                    KernelOp::QueryStatus => {
                        if let Some(reply) = msg.links.first() {
                            let payload = self.encode_status(pid);
                            self.send_kernel_to(now, *reply, tags::KERNEL_OP, payload, phys, out);
                        }
                    }
                    KernelOp::MigrateRequest { .. } => {
                        // Policy and protocol live in the migration engine.
                        out.migration_inbox.push(msg);
                    }
                }
            }
            tags::MOVE_DATA => {
                let Ok(m) = MoveDataMsg::from_bytes(&msg.payload) else {
                    return;
                };
                self.handle_user_movedata_request(now, pid, &msg, m, phys, out);
            }
            tags::LINK_MAINT => {
                if let Ok(LinkMaintMsg::NonDeliverable {
                    dest,
                    msg_type,
                    reason,
                }) = LinkMaintMsg::from_bytes(&msg.payload)
                {
                    // Mark the sender's links dead and tell the program.
                    if let Some(proc) = self.procs.get_mut(&pid) {
                        proc.links.mark_dead(dest);
                    }
                    let mut payload = BytesMut::new();
                    dest.encode(&mut payload);
                    payload.put_u16(msg_type);
                    payload.put_u8(reason);
                    let notice =
                        self.synthetic_msg(pid, local_tags::NON_DELIVERABLE, payload.freeze());
                    self.enqueue_local_quiet(pid, notice);
                    self.wake(pid);
                }
            }
            _ => {
                // A DELIVERTOKERNEL message with an unknown control tag:
                // dropped (traced as kernel-received above).
            }
        }
    }

    fn encode_status(&self, pid: ProcessId) -> Bytes {
        let mut buf = BytesMut::new();
        match self.procs.get(&pid) {
            Some(p) => {
                buf.put_u8(1);
                buf.put_u8(match p.status {
                    ExecStatus::Ready => 0,
                    ExecStatus::Waiting => 1,
                    ExecStatus::Suspended => 2,
                });
                buf.put_u8(p.in_migration as u8);
                buf.put_u16(p.queue.len() as u16);
                self.machine.encode(&mut buf);
            }
            None => buf.put_u8(0),
        }
        buf.freeze()
    }

    /// Suspend a process (take it off the run queue; messages accumulate).
    pub fn suspend(&mut self, pid: ProcessId) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            proc.status = ExecStatus::Suspended;
        }
    }

    /// Resume a suspended process.
    pub fn resume(&mut self, pid: ProcessId) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            if proc.status == ExecStatus::Suspended {
                proc.status = if proc.queue.is_empty() && proc.started {
                    ExecStatus::Waiting
                } else {
                    ExecStatus::Ready
                };
                self.schedule(pid);
            }
        }
    }

    /// Destroy a process, reclaim its memory, abort its move-data
    /// operations, and (if enabled) start forwarding-address garbage
    /// collection along the migration path (§4).
    pub fn kill(&mut self, now: Time, pid: ProcessId, phys: &mut dyn Phys, out: &mut Outbox) {
        let Some(proc) = self.procs.remove(&pid) else {
            return;
        };
        self.mem_used = self.mem_used.saturating_sub(proc.image.total_len() as u64);
        self.stats.exited += 1;
        out.trace.push(TraceEvent::Exited { pid });
        let actions = self.md.abort_ops_touching(pid);
        self.apply_md_actions(now, actions, phys, out);
        if self.cfg.gc_forwarding {
            if let Some(prev) = proc.migrated_from {
                let notice = self.kernel_msg(
                    ProcessAddress::kernel_of(prev),
                    tags::LINK_MAINT,
                    LinkMaintMsg::DeathNotice { pid }.to_bytes(),
                    vec![],
                );
                self.submit(now, notice, phys, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Kernel-addressed messages
    // ------------------------------------------------------------------

    fn handle_kernel_msg(
        &mut self,
        now: Time,
        msg: Message,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        match msg.header.msg_type {
            tags::MIGRATE => out.migration_inbox.push(msg),
            tags::MOVE_DATA => {
                let Ok(m) = MoveDataMsg::from_bytes(&msg.payload) else {
                    return;
                };
                match m {
                    MoveDataMsg::ReadReq {
                        op,
                        target,
                        sel,
                        offset,
                        len,
                    } => {
                        self.serve_kernel_read(now, &msg, op, target, sel, offset, len, phys, out);
                    }
                    MoveDataMsg::WriteReq { op, .. } => {
                        // Kernel-addressed writes are not part of any
                        // protocol we speak; refuse.
                        let a = self.md.abort_reply(op, msg.header.src_machine, 2);
                        self.apply_md_actions(now, vec![a], phys, out);
                    }
                    other => {
                        let actions = self.md.on_msg(msg.header.src_machine, other);
                        self.apply_md_actions(now, actions, phys, out);
                    }
                }
            }
            tags::LINK_MAINT => {
                let Ok(m) = LinkMaintMsg::from_bytes(&msg.payload) else {
                    return;
                };
                match m {
                    LinkMaintMsg::LinkUpdate {
                        sender,
                        migrated,
                        new_machine,
                    } => {
                        self.stats.link_updates_applied += 1;
                        if let Some(proc) = self.procs.get_mut(&sender) {
                            let patched = proc.links.rehome_links_to(migrated, new_machine);
                            self.stats.links_patched += patched as u64;
                            out.trace.push(TraceEvent::LinkUpdateApplied {
                                corr: msg.corr,
                                sender,
                                migrated,
                                patched,
                            });
                        }
                    }
                    LinkMaintMsg::DeathNotice { pid } => {
                        if let Some(entry) = self.forwarding.remove(&pid) {
                            out.trace.push(TraceEvent::ForwardingCollected { pid });
                            if let Some(prev) = entry.prev {
                                let notice = self.kernel_msg(
                                    ProcessAddress::kernel_of(prev),
                                    tags::LINK_MAINT,
                                    LinkMaintMsg::DeathNotice { pid }.to_bytes(),
                                    vec![],
                                );
                                self.submit(now, notice, phys, out);
                            }
                        }
                    }
                    LinkMaintMsg::NonDeliverable { .. } => {
                        // Addressed to a kernel only when the original
                        // sender was a kernel; our kernel protocols carry
                        // their own failure handling. Ignore.
                    }
                    LinkMaintMsg::Heartbeat { .. } => {
                        // Liveness was already refreshed when the frame
                        // arrived (`peer_heard`); the message itself just
                        // counts.
                        self.det_stats.beats_received += 1;
                    }
                }
            }
            local_tags::KERNEL_MGMT => {
                self.handle_mgmt(now, msg, phys, out);
            }
            _ => {}
        }
    }

    fn handle_mgmt(&mut self, now: Time, msg: Message, phys: &mut dyn Phys, out: &mut Outbox) {
        use crate::mgmt::KernelMgmt;
        let Ok(m) = KernelMgmt::from_bytes(&msg.payload) else {
            return;
        };
        if let KernelMgmt::CreateProcess {
            token,
            name,
            state,
            layout,
            privileged,
        } = m
        {
            let Some(reply) = msg.links.first().copied() else {
                return;
            };
            match self.spawn(now, &name, &state, layout, privileged, out) {
                Ok(pid) => {
                    let link = Link::to(pid.at(self.machine));
                    let reply_msg = Message {
                        header: MsgHeader {
                            dest: reply.addr,
                            src: self.kernel_pid(),
                            src_machine: self.machine,
                            msg_type: local_tags::KERNEL_MGMT,
                            flags: MsgFlags::FROM_KERNEL,
                            hops: 0,
                        },
                        links: vec![link],
                        payload: KernelMgmt::Created { token, pid }.to_bytes(),
                        corr: CorrId::NONE,
                    };
                    self.submit(now, reply_msg, phys, out);
                }
                Err(e) => {
                    let reason = match e {
                        DemosError::Capacity(_) => 0,
                        DemosError::UnknownProgram(_) => 1,
                        // Exhaustive: a new error variant must consciously
                        // pick its CreateFailed reason code.
                        DemosError::NoSuchMachine(_)
                        | DemosError::NoSuchProcess(_)
                        | DemosError::BadLink(_)
                        | DemosError::LinkAccess { .. }
                        | DemosError::ReplyLinkConsumed(_)
                        | DemosError::AreaOutOfBounds
                        | DemosError::AlreadyMigrating(_)
                        | DemosError::MigrationRejected(_)
                        | DemosError::MigrationAborted(_)
                        | DemosError::MigrationToSelf(_)
                        | DemosError::KernelImmovable(_)
                        | DemosError::NonDeliverable(_)
                        | DemosError::TooLarge { .. }
                        | DemosError::Wire(_)
                        | DemosError::Internal(_) => 2,
                    };
                    let reply_msg = Message {
                        header: MsgHeader {
                            dest: reply.addr,
                            src: self.kernel_pid(),
                            src_machine: self.machine,
                            msg_type: local_tags::KERNEL_MGMT,
                            flags: MsgFlags::FROM_KERNEL,
                            hops: 0,
                        },
                        links: vec![],
                        payload: KernelMgmt::CreateFailed { token, reason }.to_bytes(),
                        corr: CorrId::NONE,
                    };
                    self.submit(now, reply_msg, phys, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Move-data plumbing
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn serve_kernel_read(
        &mut self,
        now: Time,
        msg: &Message,
        op: u16,
        target: ProcessId,
        sel: AreaSel,
        offset: u32,
        len: u32,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let requester = msg.header.src_machine;
        let from_kernel = msg.header.flags.contains(MsgFlags::FROM_KERNEL);
        let actions = match self.read_area(target, sel, offset, len, None, from_kernel) {
            Ok(data) => self.md.begin_serve(op, requester, data),
            Err(_) => vec![self.md.abort_reply(op, requester, 2)],
        };
        self.apply_md_actions(now, actions, phys, out);
    }

    /// Read an area of `pid` for a move-data serve. Migration selectors
    /// require a kernel requester and a frozen process; `LinkArea` is
    /// validated against `link`.
    pub fn read_area(
        &mut self,
        pid: ProcessId,
        sel: AreaSel,
        offset: u32,
        len: u32,
        link: Option<&Link>,
        from_kernel: bool,
    ) -> Result<Bytes> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(DemosError::NoSuchProcess(pid))?;
        match sel {
            AreaSel::Resident => {
                if !from_kernel || !proc.in_migration {
                    return Err(DemosError::Internal(
                        "resident read requires migration authority",
                    ));
                }
                Ok(Bytes::from(proc.serialize_resident()))
            }
            AreaSel::Swappable => {
                if !from_kernel || !proc.in_migration {
                    return Err(DemosError::Internal(
                        "swappable read requires migration authority",
                    ));
                }
                Ok(Bytes::from(proc.serialize_swappable()))
            }
            AreaSel::Image => {
                if !from_kernel || !proc.in_migration {
                    return Err(DemosError::Internal(
                        "image read requires migration authority",
                    ));
                }
                Ok(Bytes::from(proc.image.to_flat()))
            }
            AreaSel::LinkArea => {
                let link = link.ok_or(DemosError::Internal("LinkArea read without link"))?;
                let area = link.area.ok_or(DemosError::AreaOutOfBounds)?;
                if link.target() != pid
                    || !link.attrs.contains(demos_types::LinkAttrs::DATA_READ)
                    || !area.contains_range(offset, len)
                {
                    return Err(DemosError::AreaOutOfBounds);
                }
                // Serve *live* memory: re-serialize the program state into
                // the data segment so the reader sees current contents.
                proc.refresh_image();
                proc.image
                    .read_data(offset, len)
                    .map(Bytes::copy_from_slice)
                    .ok_or(DemosError::AreaOutOfBounds)
            }
        }
    }

    /// Handle a user-level move-data request that arrived over a
    /// `DELIVERTOKERNEL` link addressed to `pid` (§2.2).
    fn handle_user_movedata_request(
        &mut self,
        now: Time,
        pid: ProcessId,
        msg: &Message,
        m: MoveDataMsg,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let requester = msg.header.src_machine;
        match m {
            MoveDataMsg::ReadReq {
                op,
                sel: AreaSel::LinkArea,
                offset,
                len,
                ..
            } => {
                let link = msg.links.first().copied();
                let actions =
                    match self.read_area(pid, AreaSel::LinkArea, offset, len, link.as_ref(), false)
                    {
                        Ok(data) => self.md.begin_serve(op, requester, data),
                        Err(_) => vec![self.md.abort_reply(op, requester, 2)],
                    };
                self.apply_md_actions(now, actions, phys, out);
            }
            MoveDataMsg::WriteReq {
                op,
                sel: AreaSel::LinkArea,
                offset,
                len,
                ..
            } => {
                let ok = msg.links.first().is_some_and(|link| {
                    link.target() == pid
                        && link.attrs.contains(demos_types::LinkAttrs::DATA_WRITE)
                        && link.area.is_some_and(|a| a.contains_range(offset, len))
                });
                let action = if ok {
                    self.md.accept_push(op, requester, pid, offset, len)
                } else {
                    self.md.abort_reply(op, requester, 2)
                };
                self.apply_md_actions(now, vec![action], phys, out);
            }
            other => {
                // Data/Ack/Done never travel DTK; a request with a
                // migration selector over a user link is refused.
                if let MoveDataMsg::ReadReq { op, .. } | MoveDataMsg::WriteReq { op, .. } = other {
                    let a = self.md.abort_reply(op, requester, 2);
                    self.apply_md_actions(now, vec![a], phys, out);
                }
            }
        }
    }

    /// Start a user-level move-data operation for local process `pid`.
    fn start_user_movedata(
        &mut self,
        now: Time,
        pid: ProcessId,
        req: MoveDataReq,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        let fail = |kernel: &mut Kernel, status: u8| {
            let payload = encode_md_done(req.token, status, 0);
            let notice = kernel.synthetic_msg(pid, local_tags::MOVE_DATA_DONE, payload);
            kernel.enqueue_local_quiet(pid, notice);
            kernel.wake(pid);
        };
        let Some(proc) = self.procs.get(&pid) else {
            return;
        };
        let Ok(link) = proc.links.get(req.link) else {
            fail(self, 2);
            return;
        };
        let Some(area) = link.area else {
            fail(self, 2);
            return;
        };
        let abs = area.offset.saturating_add(req.remote_off);
        if !area.contains_range(abs, req.len) {
            fail(self, 2);
            return;
        }
        if req.read {
            let (_op, readreq) = self.md.start_pull(
                PullPurpose::ProcessRead {
                    pid,
                    local_off: req.local_off,
                    token: req.token,
                },
                link.target(),
                AreaSel::LinkArea,
                abs,
                req.len,
            );
            let msg = Message {
                header: MsgHeader {
                    dest: link.addr,
                    src: pid,
                    src_machine: self.machine,
                    msg_type: tags::MOVE_DATA,
                    flags: MsgFlags::DELIVER_TO_KERNEL,
                    hops: 0,
                },
                links: vec![link],
                payload: readreq.to_bytes(),
                corr: CorrId::NONE,
            };
            self.submit(now, msg, phys, out);
        } else {
            let Some(proc) = self.procs.get(&pid) else {
                return;
            };
            let Some(data) = proc.image.read_data(req.local_off, req.len) else {
                fail(self, 2);
                return;
            };
            let data = Bytes::copy_from_slice(data);
            let (_op, writereq) = self.md.start_push(
                (pid, req.token),
                data,
                link.target(),
                AreaSel::LinkArea,
                abs,
            );
            let msg = Message {
                header: MsgHeader {
                    dest: link.addr,
                    src: pid,
                    src_machine: self.machine,
                    msg_type: tags::MOVE_DATA,
                    flags: MsgFlags::DELIVER_TO_KERNEL,
                    hops: 0,
                },
                links: vec![link],
                payload: writereq.to_bytes(),
                corr: CorrId::NONE,
            };
            self.submit(now, msg, phys, out);
        }
    }

    /// Carry out actions returned by the move-data engine.
    fn apply_md_actions(
        &mut self,
        now: Time,
        actions: Vec<MdAction>,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) {
        for a in actions {
            match a {
                MdAction::Send { to, msg } => {
                    let m = self.kernel_msg(
                        ProcessAddress::kernel_of(to),
                        tags::MOVE_DATA,
                        msg.to_bytes(),
                        vec![],
                    );
                    self.submit(now, m, phys, out);
                }
                MdAction::WriteProcess { pid, off, bytes } => {
                    if let Some(proc) = self.procs.get_mut(&pid) {
                        let ok = proc.image.write_data(off, &bytes);
                        debug_assert!(ok, "validated window writes must fit");
                        if let Some(program) = proc.program.as_mut() {
                            program.on_data_write(off, &bytes);
                        }
                    }
                }
                MdAction::PullDone {
                    purpose,
                    op,
                    data,
                    status,
                } => match purpose {
                    PullPurpose::Kernel { cookie } => {
                        out.trace.push(TraceEvent::MoveDataDone {
                            op,
                            bytes: data.len() as u64,
                            status,
                        });
                        out.pull_done.push(KernelPullDone {
                            cookie,
                            op,
                            data,
                            status,
                        });
                    }
                    PullPurpose::ProcessRead {
                        pid,
                        local_off,
                        token,
                    } => {
                        let mut final_status = status;
                        let len = data.len() as u32;
                        if status == 0 {
                            if let Some(proc) = self.procs.get_mut(&pid) {
                                if !proc.image.write_data(local_off, &data) {
                                    final_status = 2;
                                }
                            } else {
                                final_status = 3;
                            }
                        }
                        let payload = encode_md_done(token, final_status, len);
                        let notice = self.synthetic_msg(pid, local_tags::MOVE_DATA_DONE, payload);
                        self.enqueue_local_quiet(pid, notice);
                        self.wake(pid);
                    }
                },
                MdAction::PushDone {
                    pid,
                    token,
                    status,
                    len,
                } => {
                    let payload = encode_md_done(token, status, len);
                    let notice = self.synthetic_msg(pid, local_tags::MOVE_DATA_DONE, payload);
                    self.enqueue_local_quiet(pid, notice);
                    self.wake(pid);
                }
            }
        }
    }

    /// Start a kernel-purpose pull (migration state transfer) from
    /// `source_machine`'s kernel. Completion arrives in
    /// [`Outbox::pull_done`] with `cookie`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_kernel_pull(
        &mut self,
        now: Time,
        cookie: u64,
        target: ProcessId,
        source_machine: MachineId,
        sel: AreaSel,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> u16 {
        let (op, readreq) = self
            .md
            .start_pull(PullPurpose::Kernel { cookie }, target, sel, 0, 0);
        let msg = self.kernel_msg(
            ProcessAddress::kernel_of(source_machine),
            tags::MOVE_DATA,
            readreq.to_bytes(),
            vec![],
        );
        self.submit(now, msg, phys, out);
        op
    }

    // ------------------------------------------------------------------
    // Migration mechanisms (composed by the demos-core engine)
    // ------------------------------------------------------------------

    /// Step 1: remove the process from execution and mark it "in
    /// migration". Arriving messages (including `DELIVERTOKERNEL` ones)
    /// are held on its queue. Active move-data operations touching the
    /// process are aborted (their initiators see an error and may retry).
    pub fn freeze_for_migration(
        &mut self,
        now: Time,
        pid: ProcessId,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Result<MigrationSizes> {
        if pid.is_kernel() {
            return Err(DemosError::KernelImmovable(self.machine));
        }
        {
            let proc = self
                .procs
                .get_mut(&pid)
                .ok_or(DemosError::NoSuchProcess(pid))?;
            if proc.in_migration {
                return Err(DemosError::AlreadyMigrating(pid));
            }
            proc.in_migration = true;
            proc.refresh_image();
        }
        let actions = self.md.abort_ops_touching(pid);
        self.apply_md_actions(now, actions, phys, out);
        let Some(proc) = self.procs.get(&pid) else {
            return Err(DemosError::NoSuchProcess(pid));
        };
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Frozen,
            bytes: 0,
        });
        Ok(MigrationSizes {
            resident: proc.serialize_resident().len() as u32,
            swappable: proc.serialize_swappable().len() as u32,
            // Arithmetic length, not `to_flat().len()`: sizing the offer
            // must not flatten (copy) the whole image just to measure it.
            image: proc.image.flat_len() as u32,
            queued: proc.queue.len() as u16,
        })
    }

    /// Abort a migration: thaw the process at the source.
    pub fn unfreeze(&mut self, pid: ProcessId, out: &mut Outbox) {
        if let Some(proc) = self.procs.get_mut(&pid) {
            proc.in_migration = false;
            out.trace.push(TraceEvent::Migration {
                pid,
                phase: MigrationPhase::Aborted,
                bytes: 0,
            });
            self.schedule(pid);
        }
    }

    /// Step 3 (destination): reserve capacity for an incoming process.
    /// Returns a slot id; release with [`Kernel::release_reservation`] on
    /// failure. Reservations count against memory and process capacity.
    pub fn reserve_incoming(&mut self, pid: ProcessId, image_len: u64) -> Result<u16> {
        if self.procs.contains_key(&pid) {
            return Err(DemosError::AlreadyMigrating(pid));
        }
        if self.procs.len() + self.reserved.len() >= self.cfg.max_processes {
            return Err(DemosError::Capacity(self.machine));
        }
        if self.mem_used + image_len > self.cfg.mem_capacity {
            return Err(DemosError::Capacity(self.machine));
        }
        let slot = self.next_slot;
        self.next_slot = self.next_slot.wrapping_add(1).max(1);
        self.mem_used += image_len;
        self.reserved.insert(slot, image_len);
        Ok(slot)
    }

    /// Release a reservation made by [`Kernel::reserve_incoming`].
    pub fn release_reservation(&mut self, slot: u16) {
        if let Some(bytes) = self.reserved.remove(&slot) {
            self.mem_used = self.mem_used.saturating_sub(bytes);
        }
    }

    /// Steps 4–5 complete (destination): construct the process from the
    /// three transferred blobs against reservation `slot`. The process is
    /// *not* yet scheduled; call [`Kernel::restart_migrated`] (step 8)
    /// once the source has confirmed cleanup.
    #[allow(clippy::too_many_arguments)]
    pub fn install_migrated(
        &mut self,
        now: Time,
        slot: u16,
        from: MachineId,
        resident: &[u8],
        swappable: &[u8],
        image_flat: &[u8],
        out: &mut Outbox,
    ) -> Result<ProcessId> {
        let image = crate::image::ProcessImage::from_flat(image_flat).map_err(DemosError::Wire)?;
        let mut proc =
            Process::from_migrated(resident, swappable, image).map_err(DemosError::Wire)?;
        proc.instantiate(&self.registry)?;
        proc.migrated_from = Some(from);
        proc.migrations += 1;
        let pid = proc.pid;
        // Swap the reservation for the real memory accounting.
        let reserved = self.reserved.remove(&slot).unwrap_or(0);
        self.mem_used = self.mem_used.saturating_sub(reserved);
        self.mem_used += proc.image.total_len() as u64;
        // The process may have migrated away from here earlier and come
        // back: drop any stale forwarding address so delivery finds it.
        self.forwarding.remove(&pid);
        // Hold execution until step 8.
        proc.in_migration = true;
        // A migrated-in process can arrive with live timers; index them.
        if let Some(t) = proc.next_timer() {
            self.timer_heap.push(Reverse((t, pid)));
        }
        self.procs.insert(pid, proc);
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::ImageTransferred,
            bytes: (resident.len() + swappable.len() + image_flat.len()) as u64,
        });
        let _ = now;
        Ok(pid)
    }

    /// Step 8 (destination): restart the process "in whatever state it was
    /// in before being migrated".
    pub fn restart_migrated(&mut self, pid: ProcessId, out: &mut Outbox) -> Result<()> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(DemosError::NoSuchProcess(pid))?;
        proc.in_migration = false;
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Restarted,
            bytes: 0,
        });
        self.schedule(pid);
        Ok(())
    }

    /// Steps 6–7 (source): forward every pending message to `dest` with a
    /// rewritten location hint, remove the process state, reclaim memory,
    /// and leave a forwarding address. Returns the number of messages
    /// forwarded.
    pub fn finish_source_side(
        &mut self,
        now: Time,
        pid: ProcessId,
        dest: MachineId,
        phys: &mut dyn Phys,
        out: &mut Outbox,
    ) -> Result<u16> {
        let mut proc = self
            .procs
            .remove(&pid)
            .ok_or(DemosError::NoSuchProcess(pid))?;
        debug_assert!(proc.in_migration, "finish_source_side on unfrozen process");
        let pending: Vec<Message> = proc.queue.drain(..).collect();
        let forwarded = pending.len() as u16;
        // Step 6: "the source kernel changes the location part of the
        // process address to reflect the new location" and resends.
        for mut m in pending {
            m.header.dest = m.header.dest.rehomed(dest);
            m.header.hops = m.header.hops.saturating_add(1);
            self.submit(now, m, phys, out);
        }
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::PendingForwarded,
            bytes: 0,
        });
        // Step 7: reclaim, install the forwarding address.
        self.mem_used = self.mem_used.saturating_sub(proc.image.total_len() as u64);
        self.forwarding.insert(
            pid,
            ForwardEntry {
                to: dest,
                prev: proc.migrated_from,
                forwards: 0,
            },
        );
        out.trace
            .push(TraceEvent::ForwardingInstalled { pid, to: dest });
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::CleanedUp,
            bytes: 0,
        });
        Ok(forwarded)
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("machine", &self.machine)
            .field("procs", &self.procs.keys().collect::<Vec<_>>())
            .field("forwarding", &self.forwarding)
            .field("runq", &self.run_queue)
            .finish()
    }
}

fn encode_timer_token(token: u64) -> Bytes {
    Bytes::copy_from_slice(&token.to_be_bytes())
}

fn decode_timer_token(payload: &Bytes) -> u64 {
    let mut b = [0u8; 8];
    if payload.len() == 8 {
        b.copy_from_slice(payload);
    }
    u64::from_be_bytes(b)
}

/// Encode a `MOVE_DATA_DONE` payload: token, status, length.
pub fn encode_md_done(token: u16, status: u8, len: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(7);
    buf.put_u16(token);
    buf.put_u8(status);
    buf.put_u32(len);
    buf.freeze()
}

/// Decode a `MOVE_DATA_DONE` payload.
pub fn decode_md_done(payload: &Bytes) -> Option<(u16, u8, u32)> {
    let mut b = payload.clone();
    if b.remaining() < 7 {
        return None;
    }
    Some((b.get_u16(), b.get_u8(), b.get_u32()))
}
