//! Per-process link tables.
//!
//! "Links are the only connections a process has to the operating system,
//! system resources, and other processes. Thus, a process's link table
//! provides a complete encapsulation of the execution of the process"
//! (§2.2). The table is the *local name space* through which a process
//! refers to its links: programs hold [`LinkIdx`] values, never raw
//! addresses.
//!
//! The table is part of the process's *swappable state*; its serialized
//! size is what makes that state "about 600 bytes, depending on the size
//! of the link table" (§6).

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{Wire, WireError};
use demos_types::{DemosError, Link, LinkAttrs, LinkIdx, MachineId, ProcessId, Result};

/// A process's link table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkTable {
    slots: BTreeMap<u32, Link>,
    next: u32,
}

impl LinkTable {
    /// Empty table; indices start at 1 (0 is reserved so an all-zeroes
    /// state never aliases a valid link).
    pub fn new() -> Self {
        LinkTable {
            slots: BTreeMap::new(),
            next: 1,
        }
    }

    /// Number of links held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table holds no links.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Install a link, returning its index.
    pub fn insert(&mut self, link: Link) -> LinkIdx {
        let idx = self.next;
        self.next += 1;
        self.slots.insert(idx, link);
        LinkIdx(idx)
    }

    /// Look up a link.
    pub fn get(&self, idx: LinkIdx) -> Result<Link> {
        self.slots
            .get(&idx.0)
            .copied()
            .ok_or(DemosError::BadLink(idx))
    }

    /// Duplicate the link at `idx` into a fresh slot ("links may be …
    /// duplicated", §2.1). Reply links may not be duplicated: they are
    /// one-shot by construction.
    pub fn duplicate(&mut self, idx: LinkIdx) -> Result<LinkIdx> {
        let link = self.get(idx)?;
        if link.is_reply() {
            return Err(DemosError::LinkAccess {
                link: idx,
                need: "non-REPLY",
            });
        }
        Ok(self.insert(link))
    }

    /// Remove and return the link at `idx`.
    pub fn remove(&mut self, idx: LinkIdx) -> Result<Link> {
        self.slots.remove(&idx.0).ok_or(DemosError::BadLink(idx))
    }

    /// Fetch a link for sending. A reply link is consumed by the send
    /// (§2.4: reply links "are used only once").
    pub fn use_for_send(&mut self, idx: LinkIdx) -> Result<Link> {
        let link = self.get(idx)?;
        if link.attrs.contains(LinkAttrs::DEAD) {
            return Err(DemosError::LinkAccess {
                link: idx,
                need: "live target",
            });
        }
        if link.is_reply() {
            self.slots.remove(&idx.0);
        }
        Ok(link)
    }

    /// Patch every link addressing `migrated` to point at `new_machine` —
    /// the receiving side of the link-update message (§5). Returns how many
    /// links were updated.
    pub fn rehome_links_to(&mut self, migrated: ProcessId, new_machine: MachineId) -> usize {
        let mut n = 0;
        for link in self.slots.values_mut() {
            if link.target() == migrated && link.addr.last_known_machine != new_machine {
                link.rehome(new_machine);
                n += 1;
            }
        }
        n
    }

    /// Mark every link addressing `dead` with the DEAD attribute so later
    /// sends fail fast (non-deliverable handling, §4). Returns the count.
    pub fn mark_dead(&mut self, dead: ProcessId) -> usize {
        let mut n = 0;
        for link in self.slots.values_mut() {
            if link.target() == dead && !link.attrs.contains(LinkAttrs::DEAD) {
                link.attrs = link.attrs.union(LinkAttrs::DEAD);
                n += 1;
            }
        }
        n
    }

    /// Iterate over `(index, link)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkIdx, &Link)> {
        self.slots.iter().map(|(&i, l)| (LinkIdx(i), l))
    }
}

/// The `DEAD` attribute is kernel-internal, so it lives here rather than in
/// `demos-types`: set on links whose target was reported non-deliverable.
pub trait LinkAttrsExt {
    /// Link target is known dead; sends fail immediately.
    const DEAD: LinkAttrs;
}

impl LinkAttrsExt for LinkAttrs {
    const DEAD: LinkAttrs = LinkAttrs(1 << 8);
}

impl Wire for LinkTable {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.next);
        buf.put_u16(self.slots.len() as u16);
        for (&idx, link) in &self.slots {
            buf.put_u32(idx);
            link.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result2<Self> {
        if buf.remaining() < 6 {
            return Err(WireError::Truncated("LinkTable"));
        }
        let next = buf.get_u32();
        let n = buf.get_u16() as usize;
        let mut slots = BTreeMap::new();
        for _ in 0..n {
            if buf.remaining() < 4 {
                return Err(WireError::Truncated("LinkTable.slot"));
            }
            let idx = buf.get_u32();
            let link = Link::decode(buf)?;
            slots.insert(idx, link);
        }
        Ok(LinkTable { slots, next })
    }
}

type Result2<T> = core::result::Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::ProcessAddress;

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(1),
            local_uid: u,
        }
    }

    fn addr(u: u32, m: u16) -> ProcessAddress {
        pid(u).at(MachineId(m))
    }

    #[test]
    fn insert_get_remove() {
        let mut t = LinkTable::new();
        let i = t.insert(Link::to(addr(5, 1)));
        assert_eq!(t.get(i).unwrap().target(), pid(5));
        assert_eq!(t.len(), 1);
        t.remove(i).unwrap();
        assert!(t.get(i).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn indices_never_reused() {
        let mut t = LinkTable::new();
        let a = t.insert(Link::to(addr(1, 1)));
        t.remove(a).unwrap();
        let b = t.insert(Link::to(addr(2, 1)));
        assert_ne!(a, b, "slot indices are never recycled");
    }

    #[test]
    fn duplicate_shares_target() {
        let mut t = LinkTable::new();
        let a = t.insert(Link::to(addr(1, 3)));
        let b = t.duplicate(a).unwrap();
        assert_eq!(t.get(a).unwrap(), t.get(b).unwrap());
    }

    #[test]
    fn reply_links_consumed_by_send_and_not_duplicable() {
        let mut t = LinkTable::new();
        let r = t.insert(Link::to(addr(1, 1)).reply());
        assert!(t.duplicate(r).is_err());
        let link = t.use_for_send(r).unwrap();
        assert!(link.is_reply());
        assert!(t.get(r).is_err(), "reply link consumed by first send");
        assert!(matches!(t.use_for_send(r), Err(DemosError::BadLink(_))));
    }

    #[test]
    fn normal_links_survive_send() {
        let mut t = LinkTable::new();
        let i = t.insert(Link::to(addr(1, 1)));
        t.use_for_send(i).unwrap();
        assert!(t.get(i).is_ok());
    }

    #[test]
    fn rehome_updates_only_matching() {
        let mut t = LinkTable::new();
        let a = t.insert(Link::to(addr(7, 1)));
        let b = t.insert(Link::to(addr(7, 1)));
        let c = t.insert(Link::to(addr(8, 1)));
        let n = t.rehome_links_to(pid(7), MachineId(4));
        assert_eq!(n, 2);
        assert_eq!(t.get(a).unwrap().addr.last_known_machine, MachineId(4));
        assert_eq!(t.get(b).unwrap().addr.last_known_machine, MachineId(4));
        assert_eq!(t.get(c).unwrap().addr.last_known_machine, MachineId(1));
        // Idempotent: already-current links are not re-counted.
        assert_eq!(t.rehome_links_to(pid(7), MachineId(4)), 0);
    }

    #[test]
    fn dead_links_refuse_sends() {
        let mut t = LinkTable::new();
        let i = t.insert(Link::to(addr(7, 1)));
        assert_eq!(t.mark_dead(pid(7)), 1);
        assert_eq!(t.mark_dead(pid(7)), 0, "marking is idempotent");
        assert!(matches!(
            t.use_for_send(i),
            Err(DemosError::LinkAccess { .. })
        ));
    }

    #[test]
    fn wire_roundtrip() {
        let mut t = LinkTable::new();
        t.insert(Link::to(addr(1, 2)));
        t.insert(Link::deliver_to_kernel(addr(2, 3)));
        let i = t.insert(Link::to(addr(3, 4)));
        t.remove(i).unwrap();
        let back = demos_types::wire::roundtrip(&t).unwrap();
        assert_eq!(back, t);
        // `next` survives, so restored tables keep the no-reuse invariant.
        let mut back2 = back.clone();
        let j = back2.insert(Link::to(addr(9, 9)));
        assert!(j.0 > i.0);
    }

    #[test]
    fn serialized_size_scales_with_links() {
        // §6: swappable state ≈600 B "depending on the size of the link
        // table" — each entry costs a fixed 22 bytes here.
        let mut t = LinkTable::new();
        let empty = t.to_bytes().len();
        for k in 1..=10u32 {
            t.insert(Link::to(addr(k, 1)));
            assert_eq!(
                t.to_bytes().len(),
                empty + (k as usize) * (4 + Link::WIRE_LEN)
            );
        }
    }
}
