//! The DEMOS/MP per-processor kernel.
//!
//! This crate implements systems S3 and S4 of the design: everything a
//! single processor's kernel does in DEMOS/MP —
//!
//! * processes with code/data/stack images, link tables and message
//!   queues ([`process`], [`image`], [`linktable`]; Figure 2-2);
//! * the [`Program`] abstraction and communication-oriented kernel-call
//!   interface ([`program`]; §2.1);
//! * the message delivery system with `DELIVERTOKERNEL` receives,
//!   forwarding addresses and link-update by-products ([`kernel`];
//!   §2.2, §4, §5);
//! * the streamed move-data facility ([`movedata`]; §2.2, §6);
//! * remote process creation ([`mgmt`]) and the event trace ([`trace`]).
//!
//! The migration *protocol* (the 8 steps of §3.1) is composed on top of
//! these mechanisms by `demos-core`; this crate deliberately exposes the
//! mechanism surface (freeze, serve state, reserve, install, finish
//! source side) without policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod image;
pub mod kernel;
pub mod linktable;
pub mod mgmt;
pub mod movedata;
pub mod process;
pub mod program;
pub mod trace;

pub use checkpoint::Checkpoint;
pub use image::{ImageLayout, ProcessImage};
pub use kernel::{
    decode_md_done, encode_md_done, DetectorStats, ForwardEntry, Kernel, KernelConfig,
    KernelPullDone, KernelStats, MigrationSizes, MsgCount, Outbox, TrafficBreakdown,
};
pub use linktable::{LinkAttrsExt, LinkTable};
pub use movedata::{MdAction, MoveData, MoveDataConfig, PullPurpose};
pub use process::{ExecStatus, Process, TimerEntry};
pub use program::{local_tags, Carry, Ctx, Delivered, Effects, MoveDataReq, Program, Registry};
pub use trace::{MigrationPhase, TraceEvent, TraceRecord};
