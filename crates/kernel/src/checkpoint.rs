//! Checkpoint/restore: migration from a crashed processor (§1).
//!
//! "The mechanisms used in process migration can also be useful in fault
//! recovery … If the information necessary to transport a process is
//! saved in stable storage, it may be possible to 'migrate' a process
//! from a processor that has crashed to a working one."
//!
//! A [`Checkpoint`] is exactly the three blobs a migration transfers
//! (resident state, swappable state, memory image), wire-encoded so it
//! can live in simulated stable storage. Restoring installs the process
//! on a new machine through the same code path migration uses; writing a
//! forwarding address on the revived (empty) processor afterwards lets
//! stale links chase the process to its new home — "since forwarding
//! addresses are (degenerate) processes, the same recovery mechanism that
//! works for processes works for forwarding addresses" (§4).
//!
//! What a checkpoint does **not** contain: the message queue. Messages in
//! flight or queued at crash time are lost with the processor — exactly
//! the semantics of a real crash; the reliable channel's retransmissions
//! cover only transport-level loss, not application state.

use bytes::{Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};
use demos_types::{DemosError, MachineId, ProcessId, Result, Time};

use crate::image::ProcessImage;
use crate::kernel::{Kernel, Outbox};
use crate::trace::{MigrationPhase, TraceEvent};

/// A stable-storage image of one process: the three migration blobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The checkpointed process.
    pub pid: ProcessId,
    /// Machine it lived on when checkpointed.
    pub taken_on: MachineId,
    /// Virtual time of the checkpoint.
    pub taken_at: Time,
    /// Resident (non-swappable) state.
    pub resident: Vec<u8>,
    /// Swappable state (link table, accounting).
    pub swappable: Vec<u8>,
    /// Flattened memory image.
    pub image: Vec<u8>,
}

impl Checkpoint {
    /// Total stable-storage bytes.
    pub fn len(&self) -> usize {
        self.resident.len() + self.swappable.len() + self.image.len()
    }

    /// Whether the checkpoint is empty (never true for real checkpoints).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Wire for Checkpoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.pid.encode(buf);
        self.taken_on.encode(buf);
        self.taken_at.encode(buf);
        wire::put_bytes(buf, &self.resident);
        wire::put_bytes(buf, &self.swappable);
        wire::put_bytes(buf, &self.image);
    }

    fn decode(buf: &mut Bytes) -> core::result::Result<Self, WireError> {
        let pid = ProcessId::decode(buf)?;
        let taken_on = MachineId::decode(buf)?;
        let taken_at = Time::decode(buf)?;
        let resident = wire::get_bytes(buf, "Checkpoint.resident", 1 << 16)?.to_vec();
        let swappable = wire::get_bytes(buf, "Checkpoint.swappable", 1 << 20)?.to_vec();
        let image = wire::get_bytes(buf, "Checkpoint.image", 64 << 20)?.to_vec();
        Ok(Checkpoint {
            pid,
            taken_on,
            taken_at,
            resident,
            swappable,
            image,
        })
    }
}

impl Kernel {
    /// Take a checkpoint of a local process: refresh its image from the
    /// live program and serialize the three migration blobs. The process
    /// keeps running (copy-on-write semantics are free in a simulator).
    pub fn checkpoint(&mut self, now: Time, pid: ProcessId) -> Result<Checkpoint> {
        if pid.is_kernel() {
            return Err(DemosError::KernelImmovable(self.machine()));
        }
        let machine = self.machine();
        let proc = self
            .process_mut(pid)
            .ok_or(DemosError::NoSuchProcess(pid))?;
        proc.refresh_image();
        Ok(Checkpoint {
            pid,
            taken_on: machine,
            taken_at: now,
            resident: proc.serialize_resident(),
            swappable: proc.serialize_swappable(),
            image: proc.image.to_flat(),
        })
    }

    /// Restore a checkpointed process on *this* machine (which must not
    /// already host it). The process resumes from the checkpointed state;
    /// anything that happened after the checkpoint — including queued
    /// messages — is lost, as in a real crash.
    pub fn restore_checkpoint(
        &mut self,
        now: Time,
        ck: &Checkpoint,
        out: &mut Outbox,
    ) -> Result<ProcessId> {
        let image = ProcessImage::from_flat(&ck.image).map_err(DemosError::Wire)?;
        let slot = self.reserve_incoming(ck.pid, image.total_len() as u64)?;
        let pid = match self.install_migrated(
            now,
            slot,
            ck.taken_on,
            &ck.resident,
            &ck.swappable,
            &ck.image,
            out,
        ) {
            Ok(pid) => pid,
            Err(e) => {
                self.release_reservation(slot);
                return Err(e);
            }
        };
        self.restart_migrated(pid, out)?;
        out.trace.push(TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Restarted,
            bytes: 0,
        });
        Ok(pid)
    }

    /// Write a forwarding address by hand — the recovery action a revived
    /// (or surviving) processor takes so stale links can find a process
    /// that was restored elsewhere (§4's recovery remark).
    pub fn install_forwarding(&mut self, pid: ProcessId, to: MachineId, out: &mut Outbox) {
        self.forwarding_insert(pid, to);
        out.trace.push(TraceEvent::ForwardingInstalled { pid, to });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Ctx, Delivered, Program, Registry};
    use crate::ImageLayout;
    use std::sync::Arc;

    struct Echo(u64);
    impl Program for Echo {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Delivered) {
            self.0 += 1;
        }
        fn save(&self) -> Vec<u8> {
            self.0.to_be_bytes().to_vec()
        }
    }

    fn registry() -> Arc<Registry> {
        let mut r = Registry::new();
        r.register("echo", |s| {
            let mut b = [0u8; 8];
            if s.len() == 8 {
                b.copy_from_slice(s);
            }
            Box::new(Echo(u64::from_be_bytes(b)))
        });
        r.into_shared()
    }

    #[test]
    fn checkpoint_roundtrips_on_wire() {
        let reg = registry();
        let mut k = Kernel::new(MachineId(0), crate::KernelConfig::default(), reg);
        let mut out = Outbox::default();
        let pid = k
            .spawn(
                Time(0),
                "echo",
                &7u64.to_be_bytes(),
                ImageLayout::default(),
                false,
                &mut out,
            )
            .unwrap();
        let ck = k.checkpoint(Time(5), pid).unwrap();
        let back = demos_types::wire::roundtrip(&ck).unwrap();
        assert_eq!(back, ck);
        assert!(ck.len() > 250 + 14_000);
        assert!(!ck.is_empty());
    }

    #[test]
    fn restore_on_another_kernel_preserves_program_state() {
        let reg = registry();
        let mut a = Kernel::new(
            MachineId(0),
            crate::KernelConfig::default(),
            Arc::clone(&reg),
        );
        let mut b = Kernel::new(MachineId(1), crate::KernelConfig::default(), reg);
        let mut out = Outbox::default();
        let pid = a
            .spawn(
                Time(0),
                "echo",
                &42u64.to_be_bytes(),
                ImageLayout::default(),
                false,
                &mut out,
            )
            .unwrap();
        let ck = a.checkpoint(Time(1), pid).unwrap();
        // (machine A "crashes" — we simply stop using it.)
        let restored = b.restore_checkpoint(Time(2), &ck, &mut out).unwrap();
        assert_eq!(restored, pid, "identity preserved across crash recovery");
        let p = b.process(pid).unwrap();
        assert_eq!(
            p.program.as_ref().unwrap().save(),
            42u64.to_be_bytes().to_vec()
        );
        assert!(!p.in_migration);
    }

    #[test]
    fn restore_refuses_duplicate() {
        let reg = registry();
        let mut a = Kernel::new(MachineId(0), crate::KernelConfig::default(), reg);
        let mut out = Outbox::default();
        let pid = a
            .spawn(
                Time(0),
                "echo",
                &[0u8; 8],
                ImageLayout::default(),
                false,
                &mut out,
            )
            .unwrap();
        let ck = a.checkpoint(Time(1), pid).unwrap();
        // The process still lives here: restoring on the same kernel fails.
        assert!(a.restore_checkpoint(Time(2), &ck, &mut out).is_err());
    }

    #[test]
    fn kernel_cannot_be_checkpointed() {
        let reg = registry();
        let mut a = Kernel::new(MachineId(0), crate::KernelConfig::default(), reg);
        assert!(a
            .checkpoint(Time(0), ProcessId::kernel_of(MachineId(0)))
            .is_err());
    }
}
