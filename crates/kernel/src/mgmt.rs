//! Kernel management protocol: remote process creation.
//!
//! "The process and memory managers … control processes by sending
//! messages to kernels to manipulate process states" (§2.3). Creation is
//! the one operation that cannot be addressed to a process (it does not
//! exist yet), so it is kernel-addressed: the process manager sends
//! `CreateProcess` to a machine's kernel, which spawns the process and
//! replies over the carried reply link with a fresh link to it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};
use demos_types::ProcessId;

use crate::image::ImageLayout;

/// Kernel-addressed management messages (tag
/// [`crate::program::local_tags::KERNEL_MGMT`]).
#[derive(Clone, Debug, PartialEq)]
pub enum KernelMgmt {
    /// Spawn a process running registered program `name` with initial
    /// `state`. Reply link is carried in the message's link slots.
    CreateProcess {
        /// Requester-chosen token echoed in the reply.
        token: u32,
        /// Registered program name.
        name: String,
        /// Initial serialized program state.
        state: Bytes,
        /// Declared segment sizes.
        layout: ImageLayout,
        /// Whether the new process is a system (privileged) process.
        privileged: bool,
    },
    /// Success reply; a link to the new process is carried in the
    /// message's link slots.
    Created {
        /// Echoed request token.
        token: u32,
        /// The new process.
        pid: ProcessId,
    },
    /// Failure reply.
    CreateFailed {
        /// Echoed request token.
        token: u32,
        /// 0 = capacity, 1 = unknown program, 2 = other.
        reason: u8,
    },
}

impl Wire for KernelMgmt {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KernelMgmt::CreateProcess {
                token,
                name,
                state,
                layout,
                privileged,
            } => {
                buf.put_u8(1);
                buf.put_u32(*token);
                wire::put_string(buf, name);
                wire::put_bytes(buf, state);
                layout.encode(buf);
                buf.put_u8(*privileged as u8);
            }
            KernelMgmt::Created { token, pid } => {
                buf.put_u8(2);
                buf.put_u32(*token);
                pid.encode(buf);
            }
            KernelMgmt::CreateFailed { token, reason } => {
                buf.put_u8(3);
                buf.put_u32(*token);
                buf.put_u8(*reason);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("KernelMgmt"));
        }
        match buf.get_u8() {
            1 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated("CreateProcess.token"));
                }
                let token = buf.get_u32();
                let name = wire::get_string(buf, "CreateProcess.name", 256)?;
                let state = wire::get_bytes(buf, "CreateProcess.state", 1 << 20)?;
                let layout = ImageLayout::decode(buf)?;
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("CreateProcess.privileged"));
                }
                Ok(KernelMgmt::CreateProcess {
                    token,
                    name,
                    state,
                    layout,
                    privileged: buf.get_u8() != 0,
                })
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated("Created.token"));
                }
                let token = buf.get_u32();
                Ok(KernelMgmt::Created {
                    token,
                    pid: ProcessId::decode(buf)?,
                })
            }
            3 => {
                if buf.remaining() < 5 {
                    return Err(WireError::Truncated("CreateFailed"));
                }
                Ok(KernelMgmt::CreateFailed {
                    token: buf.get_u32(),
                    reason: buf.get_u8(),
                })
            }
            t => Err(WireError::BadTag {
                what: "KernelMgmt",
                tag: t as u16,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::wire::roundtrip;
    use demos_types::MachineId;

    #[test]
    fn roundtrips() {
        let msgs = [
            KernelMgmt::CreateProcess {
                token: 7,
                name: "fs".into(),
                state: Bytes::from_static(b"\x01"),
                layout: ImageLayout::default(),
                privileged: true,
            },
            KernelMgmt::Created {
                token: 8,
                pid: ProcessId {
                    creating_machine: MachineId(1),
                    local_uid: 9,
                },
            },
            KernelMgmt::CreateFailed {
                token: 9,
                reason: 1,
            },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }
}
