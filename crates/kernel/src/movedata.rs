//! The move-data facility (§2.2, §6).
//!
//! Large transfers — file accesses and the three state moves of process
//! migration — do not travel as single messages. Instead the kernel
//! streams a sequence of data packets: "the packets are sent to the
//! receiving kernel in a continuous stream. The receiving kernel
//! acknowledges each packet (but the sending kernel does not have to wait
//! for the acknowledgement to send the next packet)" (§6).
//!
//! [`MoveData`] is a pure state machine: the kernel feeds it protocol
//! messages and it returns [`MdAction`]s (messages to send, bytes to write
//! into a process, completions to deliver). This keeps it independently
//! testable and free of borrow entanglement with the process table.
//!
//! Operation ids partition into two spaces: *pull* ops (high bit clear)
//! are allocated by a reader issuing `ReadReq`; *push* ops (high bit set)
//! by a writer issuing `WriteReq`. Requests are routed to the target
//! *process* over a `DELIVERTOKERNEL` link — so they follow forwarding
//! addresses to wherever the process lives — while the resulting data and
//! acknowledgement streams run kernel-to-kernel between the two machines
//! that ended up involved. A push therefore starts with a go-ahead
//! handshake ([`GO_SEQ`]): the kernel that accepted the `WriteReq` tells
//! the writer where to stream.

use std::collections::BTreeMap;

use bytes::Bytes;
use demos_types::proto::{AreaSel, MoveDataMsg};
use demos_types::{MachineId, ProcessId};

/// High bit marking push (writer-allocated) operation ids.
pub const PUSH_BIT: u16 = 0x8000;

/// Sentinel sequence number for the go-ahead acknowledgement a serving
/// kernel returns after validating a `WriteReq`.
pub const GO_SEQ: u32 = u32::MAX;

/// Configuration of the streaming engine.
#[derive(Clone, Copy, Debug)]
pub struct MoveDataConfig {
    /// Bytes per data packet. §6: the facility "is designed to minimize
    /// network overhead by sending larger packets".
    pub chunk: usize,
    /// Maximum unacknowledged packets in flight per operation.
    pub window: u32,
    /// Acknowledge every n-th packet (1 = every packet, as the paper
    /// describes; larger values are an ablation knob).
    pub ack_every: u32,
}

impl Default for MoveDataConfig {
    fn default() -> Self {
        MoveDataConfig {
            chunk: 1024,
            window: 16,
            ack_every: 1,
        }
    }
}

/// Why a pull was started; echoed in the completion action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PullPurpose {
    /// Kernel-internal pull (migration state transfer); the cookie lets
    /// the migration engine match completions to protocol stages.
    Kernel {
        /// Caller-chosen cookie.
        cookie: u64,
    },
    /// A local process read a remote data area; on completion the bytes
    /// land in its data segment and it gets a `MOVE_DATA_DONE` message.
    ProcessRead {
        /// The reading process.
        pid: ProcessId,
        /// Destination offset in its data segment.
        local_off: u32,
        /// Token echoed to the program.
        token: u16,
    },
}

impl PullPurpose {
    /// The local process behind this pull, if user-level.
    fn pid(&self) -> Option<ProcessId> {
        match self {
            PullPurpose::Kernel { .. } => None,
            PullPurpose::ProcessRead { pid, .. } => Some(*pid),
        }
    }
}

/// Instructions returned by the engine for the kernel to carry out.
#[derive(Clone, Debug, PartialEq)]
pub enum MdAction {
    /// Send a move-data protocol message to the kernel of `to`.
    Send {
        /// Destination machine (kernel-addressed).
        to: MachineId,
        /// Protocol message.
        msg: MoveDataMsg,
    },
    /// Write bytes into a local process's data segment (validated write
    /// sink).
    WriteProcess {
        /// Target process.
        pid: ProcessId,
        /// Offset in its data segment.
        off: u32,
        /// The bytes.
        bytes: Bytes,
    },
    /// A pull completed (successfully or not).
    PullDone {
        /// Why it was started.
        purpose: PullPurpose,
        /// Operation id.
        op: u16,
        /// Collected bytes (empty on failure).
        data: Vec<u8>,
        /// 0 = success.
        status: u8,
    },
    /// A local process's push (write) completed; deliver `MOVE_DATA_DONE`.
    PushDone {
        /// The writing process.
        pid: ProcessId,
        /// Token echoed to the program.
        token: u16,
        /// 0 = success.
        status: u8,
        /// Bytes written.
        len: u32,
    },
}

/// An outbound stream (we are sending data).
#[derive(Debug)]
struct Outbound {
    /// Where data packets go; `None` for a push awaiting its go-ahead.
    peer: Option<MachineId>,
    data: Bytes,
    next_seq: u32,
    acked: u32,
    /// For pushes: who to notify when the receiver confirms.
    origin: Option<(ProcessId, u16)>,
    fully_sent: bool,
}

impl Outbound {
    fn total_packets(&self, chunk: usize) -> u32 {
        self.data.len().div_ceil(chunk).max(1) as u32
    }
}

/// An inbound stream (we are collecting data).
#[derive(Debug)]
struct Inbound {
    buf: Vec<u8>,
    next_seq: u32,
    /// For pulls: purpose to echo on completion.
    purpose: Option<PullPurpose>,
    /// For inbound pushes: validated sink in a local process.
    sink: Option<PushSink>,
    received_packets: u32,
}

/// A validated write window in a local process.
#[derive(Debug, Clone, Copy)]
struct PushSink {
    pid: ProcessId,
    base_off: u32,
    expect: u32,
    written: u32,
}

/// The per-kernel move-data engine.
#[derive(Debug)]
pub struct MoveData {
    cfg: MoveDataConfig,
    next_pull: u16,
    next_push: u16,
    /// Pull ops we initiated, keyed by op id (we allocated it).
    pulls: BTreeMap<u16, Inbound>,
    /// Push streams arriving from peers, keyed by (writer machine, op).
    inbound_pushes: BTreeMap<(MachineId, u16), Inbound>,
    /// Read streams we are serving, keyed by (reader machine, op) — the
    /// reader allocated the op, so the pair is unique.
    serves: BTreeMap<(MachineId, u16), Outbound>,
    /// Push streams we initiated, keyed by op (we allocated it).
    pushes_out: BTreeMap<u16, Outbound>,
    /// Total payload bytes moved (statistics).
    bytes_moved: u64,
}

impl MoveData {
    /// New engine.
    pub fn new(cfg: MoveDataConfig) -> Self {
        MoveData {
            cfg,
            next_pull: 1,
            next_push: 1,
            pulls: BTreeMap::new(),
            inbound_pushes: BTreeMap::new(),
            serves: BTreeMap::new(),
            pushes_out: BTreeMap::new(),
            bytes_moved: 0,
        }
    }

    /// Total payload bytes this engine has received or served.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of in-flight operations (all roles).
    pub fn active_ops(&self) -> usize {
        self.pulls.len() + self.inbound_pushes.len() + self.serves.len() + self.pushes_out.len()
    }

    /// Whether any active operation involves local process `pid` (as
    /// reader, writer, or write target). Migration defers freezing while
    /// this holds, then aborts stragglers.
    pub fn has_ops_touching(&self, pid: ProcessId) -> bool {
        self.pulls
            .values()
            .any(|ib| ib.purpose.as_ref().and_then(|p| p.pid()) == Some(pid))
            || self
                .inbound_pushes
                .values()
                .any(|ib| ib.sink.is_some_and(|s| s.pid == pid))
            || self
                .pushes_out
                .values()
                .any(|ob| ob.origin.is_some_and(|(p, _)| p == pid))
    }

    /// Begin a pull: returns the op id and the `ReadReq` the kernel should
    /// route (over a `DELIVERTOKERNEL` path for user reads, or directly to
    /// the source kernel for migration pulls).
    pub fn start_pull(
        &mut self,
        purpose: PullPurpose,
        target: ProcessId,
        sel: AreaSel,
        offset: u32,
        len: u32,
    ) -> (u16, MoveDataMsg) {
        let op = self.next_pull & !PUSH_BIT;
        self.next_pull = self.next_pull.wrapping_add(1) & !PUSH_BIT;
        self.pulls.insert(
            op,
            Inbound {
                buf: Vec::new(),
                next_seq: 0,
                purpose: Some(purpose),
                sink: None,
                received_packets: 0,
            },
        );
        (
            op,
            MoveDataMsg::ReadReq {
                op,
                target,
                sel,
                offset,
                len,
            },
        )
    }

    /// Begin a push of `data`: returns the op id and the `WriteReq` the
    /// kernel should route to the target process. Data streams only after
    /// the accepting kernel's go-ahead arrives.
    pub fn start_push(
        &mut self,
        origin: (ProcessId, u16),
        data: Bytes,
        target: ProcessId,
        sel: AreaSel,
        offset: u32,
    ) -> (u16, MoveDataMsg) {
        let op = self.next_push | PUSH_BIT;
        self.next_push = self.next_push.wrapping_add(1);
        let len = data.len() as u32;
        self.pushes_out.insert(
            op,
            Outbound {
                peer: None,
                data,
                next_seq: 0,
                acked: 0,
                origin: Some(origin),
                fully_sent: false,
            },
        );
        (
            op,
            MoveDataMsg::WriteReq {
                op,
                target,
                sel,
                offset,
                len,
            },
        )
    }

    /// Serve a validated `ReadReq`: stream `data` back to `requester`.
    pub fn begin_serve(&mut self, op: u16, requester: MachineId, data: Bytes) -> Vec<MdAction> {
        let mut ob = Outbound {
            peer: Some(requester),
            data,
            next_seq: 0,
            acked: 0,
            origin: None,
            fully_sent: false,
        };
        let mut actions = Vec::new();
        Self::pump(&self.cfg, op, &mut ob, &mut actions);
        // Once every packet is out, the serve needs no further state: the
        // transport is reliable and remaining acks are pure flow control.
        if !ob.fully_sent {
            self.serves.insert((requester, op), ob);
        }
        actions
    }

    /// Accept a validated inbound `WriteReq` from `from`'s kernel targeting
    /// a window of local process `pid`; returns the go-ahead action.
    pub fn accept_push(
        &mut self,
        op: u16,
        from: MachineId,
        pid: ProcessId,
        base_off: u32,
        expect: u32,
    ) -> MdAction {
        self.inbound_pushes.insert(
            (from, op),
            Inbound {
                buf: Vec::new(),
                next_seq: 0,
                purpose: None,
                sink: Some(PushSink {
                    pid,
                    base_off,
                    expect,
                    written: 0,
                }),
                received_packets: 0,
            },
        );
        MdAction::Send {
            to: from,
            msg: MoveDataMsg::Ack { op, seq: GO_SEQ },
        }
    }

    /// Reply to a request that failed validation.
    pub fn abort_reply(&self, op: u16, to: MachineId, reason: u8) -> MdAction {
        MdAction::Send {
            to,
            msg: MoveDataMsg::Abort { op, reason },
        }
    }

    /// Abort every active operation touching local process `pid` (it is
    /// being frozen for migration or has died). Peers get `Abort`; local
    /// user operations complete with an error.
    pub fn abort_ops_touching(&mut self, pid: ProcessId) -> Vec<MdAction> {
        let mut actions = Vec::new();
        let dead_pulls: Vec<u16> = self
            .pulls
            .iter()
            .filter(|(_, ib)| ib.purpose.as_ref().and_then(|p| p.pid()) == Some(pid))
            .map(|(&op, _)| op)
            .collect();
        for op in dead_pulls {
            let Some(ib) = self.pulls.remove(&op) else {
                continue;
            };
            let Some(purpose) = ib.purpose else {
                continue;
            };
            actions.push(MdAction::PullDone {
                purpose,
                op,
                data: Vec::new(),
                status: 9,
            });
        }
        let dead_in: Vec<(MachineId, u16)> = self
            .inbound_pushes
            .iter()
            .filter(|(_, ib)| ib.sink.is_some_and(|s| s.pid == pid))
            .map(|(&k, _)| k)
            .collect();
        for (peer, op) in dead_in {
            self.inbound_pushes.remove(&(peer, op));
            actions.push(MdAction::Send {
                to: peer,
                msg: MoveDataMsg::Abort { op, reason: 9 },
            });
        }
        let dead_out: Vec<u16> = self
            .pushes_out
            .iter()
            .filter(|(_, ob)| ob.origin.is_some_and(|(p, _)| p == pid))
            .map(|(&op, _)| op)
            .collect();
        for op in dead_out {
            let Some(ob) = self.pushes_out.remove(&op) else {
                continue;
            };
            if let Some(peer) = ob.peer {
                actions.push(MdAction::Send {
                    to: peer,
                    msg: MoveDataMsg::Abort { op, reason: 9 },
                });
            }
            if let Some((p, token)) = ob.origin {
                actions.push(MdAction::PushDone {
                    pid: p,
                    token,
                    status: 9,
                    len: 0,
                });
            }
        }
        actions
    }

    /// Emit as many data packets as the window allows; appends `Done`
    /// after the final packet (the transport is ordered, so `Done`
    /// arriving implies all packets arrived).
    fn pump(cfg: &MoveDataConfig, op: u16, ob: &mut Outbound, actions: &mut Vec<MdAction>) {
        let Some(peer) = ob.peer else { return };
        let total = ob.total_packets(cfg.chunk);
        while ob.next_seq < total && ob.next_seq - ob.acked < cfg.window {
            let start = ob.next_seq as usize * cfg.chunk;
            let end = (start + cfg.chunk).min(ob.data.len());
            actions.push(MdAction::Send {
                to: peer,
                msg: MoveDataMsg::Data {
                    op,
                    seq: ob.next_seq,
                    bytes: ob.data.slice(start..end),
                },
            });
            ob.next_seq += 1;
        }
        if ob.next_seq == total && !ob.fully_sent {
            ob.fully_sent = true;
            actions.push(MdAction::Send {
                to: peer,
                msg: MoveDataMsg::Done {
                    op,
                    status: 0,
                    total: ob.data.len() as u32,
                },
            });
        }
    }

    /// Handle a protocol message from `from`'s kernel.
    pub fn on_msg(&mut self, from: MachineId, msg: MoveDataMsg) -> Vec<MdAction> {
        let mut actions = Vec::new();
        match msg {
            MoveDataMsg::Data { op, seq, bytes } => {
                self.bytes_moved += bytes.len() as u64;
                let is_pull = op & PUSH_BIT == 0;
                let ib = if is_pull {
                    self.pulls.get_mut(&op)
                } else {
                    self.inbound_pushes.get_mut(&(from, op))
                };
                let Some(ib) = ib else { return actions };
                // Transport delivers in order; a gap means a protocol bug.
                debug_assert_eq!(seq, ib.next_seq, "move-data stream out of order");
                ib.next_seq = seq + 1;
                ib.received_packets += 1;
                if ib.received_packets % self.cfg.ack_every == 0 {
                    actions.push(MdAction::Send {
                        to: from,
                        msg: MoveDataMsg::Ack { op, seq },
                    });
                }
                if let Some(sink) = &mut ib.sink {
                    let off = sink.base_off + sink.written;
                    sink.written += bytes.len() as u32;
                    actions.push(MdAction::WriteProcess {
                        pid: sink.pid,
                        off,
                        bytes,
                    });
                } else {
                    ib.buf.extend_from_slice(&bytes);
                }
            }
            MoveDataMsg::Ack { op, seq } => {
                let is_push = op & PUSH_BIT != 0;
                let ob = if is_push {
                    self.pushes_out.get_mut(&op)
                } else {
                    self.serves.get_mut(&(from, op))
                };
                let Some(ob) = ob else { return actions };
                if seq == GO_SEQ {
                    // Go-ahead: now we know which kernel accepted the push.
                    if ob.peer.is_none() {
                        ob.peer = Some(from);
                    }
                } else {
                    ob.acked = ob.acked.max(seq + 1);
                }
                Self::pump(&self.cfg, op, ob, &mut actions);
                // A fully-emitted serve can be dropped; pushes wait for the
                // receiver's Done confirmation.
                if !is_push && ob.fully_sent {
                    self.serves.remove(&(from, op));
                }
            }
            MoveDataMsg::Done { op, status, total } => {
                let is_pull = op & PUSH_BIT == 0;
                if is_pull {
                    if let Some(ib) = self.pulls.remove(&op) {
                        let ok = status == 0 && ib.buf.len() as u32 == total;
                        if let Some(purpose) = ib.purpose {
                            actions.push(MdAction::PullDone {
                                purpose,
                                op,
                                data: if ok { ib.buf } else { Vec::new() },
                                status: if ok { 0 } else { 1 },
                            });
                        }
                    }
                    // (A Done for a serve we ran does not occur: serves end
                    // with our own Done; the reader sends nothing back.)
                } else if let Some(sink) =
                    self.inbound_pushes.get(&(from, op)).and_then(|ib| ib.sink)
                {
                    // Writer finished streaming; confirm once all bytes are
                    // in (ordered transport ⇒ they are).
                    let ok = status == 0 && sink.written == total && sink.written == sink.expect;
                    actions.push(MdAction::Send {
                        to: from,
                        msg: if ok {
                            MoveDataMsg::Done {
                                op,
                                status: 0,
                                total,
                            }
                        } else {
                            MoveDataMsg::Abort { op, reason: 1 }
                        },
                    });
                    self.inbound_pushes.remove(&(from, op));
                } else if let Some(ob) = self.pushes_out.remove(&op) {
                    // Receiver's confirmation of our push.
                    if let Some((pid, token)) = ob.origin {
                        actions.push(MdAction::PushDone {
                            pid,
                            token,
                            status,
                            len: ob.data.len() as u32,
                        });
                    }
                }
            }
            MoveDataMsg::Abort { op, reason } => {
                let is_pull = op & PUSH_BIT == 0;
                if is_pull {
                    if let Some(purpose) = self.pulls.remove(&op).and_then(|ib| ib.purpose) {
                        actions.push(MdAction::PullDone {
                            purpose,
                            op,
                            data: Vec::new(),
                            status: reason.max(1),
                        });
                    }
                    self.serves.remove(&(from, op));
                } else {
                    self.inbound_pushes.remove(&(from, op));
                    if let Some(ob) = self.pushes_out.remove(&op) {
                        if let Some((pid, token)) = ob.origin {
                            actions.push(MdAction::PushDone {
                                pid,
                                token,
                                status: reason.max(1),
                                len: 0,
                            });
                        }
                    }
                }
            }
            MoveDataMsg::ReadReq { .. } | MoveDataMsg::WriteReq { .. } => {
                // Requests are validated by the kernel (area rights, process
                // lookup) before reaching the engine; reaching here is a bug.
                debug_assert!(false, "requests are handled by the kernel");
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: m(0),
            local_uid: u,
        }
    }

    fn cfg(chunk: usize, window: u32) -> MoveDataConfig {
        MoveDataConfig {
            chunk,
            window,
            ack_every: 1,
        }
    }

    /// Drive a complete pull between two engines, returning the collected
    /// data and the number of Data/Ack messages exchanged.
    fn run_pull(data: Vec<u8>, chunk: usize, window: u32) -> (Vec<u8>, usize, usize) {
        let mut reader = MoveData::new(cfg(chunk, window));
        let mut server = MoveData::new(cfg(chunk, window));
        let (op, req) = reader.start_pull(
            PullPurpose::Kernel { cookie: 7 },
            pid(1),
            AreaSel::Image,
            0,
            0,
        );
        let MoveDataMsg::ReadReq { op: rop, .. } = req else {
            panic!("not a read req")
        };
        assert_eq!(rop, op);
        // The server kernel validates the request and serves the bytes.
        let mut to_reader: Vec<MoveDataMsg> = Vec::new();
        let mut to_server: Vec<MoveDataMsg> = Vec::new();
        let mut result = None;
        let mut datas = 0;
        let mut acks = 0;
        for a in server.begin_serve(op, m(0), Bytes::from(data.clone())) {
            match a {
                MdAction::Send { to, msg } => {
                    assert_eq!(to, m(0));
                    to_reader.push(msg);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        while !to_reader.is_empty() || !to_server.is_empty() {
            if !to_reader.is_empty() {
                let msg = to_reader.remove(0);
                if matches!(msg, MoveDataMsg::Data { .. }) {
                    datas += 1;
                }
                for a in reader.on_msg(m(1), msg) {
                    match a {
                        MdAction::Send { to, msg } => {
                            assert_eq!(to, m(1));
                            to_server.push(msg);
                        }
                        MdAction::PullDone { data, status, .. } => result = Some((data, status)),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            if !to_server.is_empty() {
                let msg = to_server.remove(0);
                if matches!(msg, MoveDataMsg::Ack { .. }) {
                    acks += 1;
                }
                for a in server.on_msg(m(0), msg) {
                    match a {
                        MdAction::Send { to, msg } => {
                            assert_eq!(to, m(0));
                            to_reader.push(msg);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
        let (got, status) = result.expect("pull completed");
        assert_eq!(status, 0);
        assert_eq!(reader.active_ops(), 0, "reader state cleaned up");
        assert_eq!(server.active_ops(), 0, "server state cleaned up");
        (got, datas, acks)
    }

    #[test]
    fn pull_transfers_exact_bytes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let (got, datas, acks) = run_pull(data.clone(), 1024, 16);
        assert_eq!(got, data);
        assert_eq!(datas, 10, "10000 bytes / 1024-byte chunks = 10 packets");
        assert_eq!(acks, 10, "each packet acknowledged (§6)");
    }

    #[test]
    fn window_smaller_than_stream_still_completes() {
        let data: Vec<u8> = (0..5_000u32).map(|i| (i * 7) as u8).collect();
        let (got, datas, _) = run_pull(data.clone(), 256, 2);
        assert_eq!(got, data);
        assert_eq!(datas, 20);
    }

    #[test]
    fn empty_area_pull() {
        let (got, datas, _) = run_pull(Vec::new(), 1024, 4);
        assert!(got.is_empty());
        assert_eq!(datas, 1, "empty area still sends one (empty) packet");
    }

    #[test]
    fn push_handshake_then_stream() {
        let mut writer = MoveData::new(cfg(512, 8));
        let mut target = MoveData::new(cfg(512, 8));
        let payload: Vec<u8> = (0..1500u32).map(|i| i as u8).collect();
        let (op, req) = writer.start_push(
            (pid(5), 77),
            Bytes::from(payload.clone()),
            pid(9),
            AreaSel::LinkArea,
            64,
        );
        assert!(op & PUSH_BIT != 0);
        let MoveDataMsg::WriteReq { len, .. } = req else {
            panic!("not a write req")
        };
        assert_eq!(len, 1500);
        // Target kernel validates the window, accepts, and sends go-ahead.
        let go = target.accept_push(op, m(0), pid(9), 64, 1500);
        let MdAction::Send { msg: go_msg, .. } = go else {
            panic!()
        };
        // Nothing streams before the go-ahead.
        assert_eq!(writer.active_ops(), 1);
        let mut to_target: Vec<MoveDataMsg> = Vec::new();
        let mut to_writer: Vec<MoveDataMsg> = vec![go_msg];
        let mut writes = Vec::new();
        let mut push_done = None;
        while !to_target.is_empty() || !to_writer.is_empty() {
            if !to_writer.is_empty() {
                let msg = to_writer.remove(0);
                for a in writer.on_msg(m(1), msg) {
                    match a {
                        MdAction::Send { msg, .. } => to_target.push(msg),
                        MdAction::PushDone {
                            pid: p,
                            token,
                            status,
                            len,
                        } => push_done = Some((p, token, status, len)),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            if !to_target.is_empty() {
                let msg = to_target.remove(0);
                for a in target.on_msg(m(0), msg) {
                    match a {
                        MdAction::Send { msg, .. } => to_writer.push(msg),
                        MdAction::WriteProcess { off, bytes, .. } => writes.push((off, bytes)),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
        assert_eq!(push_done, Some((pid(5), 77, 0, 1500)));
        let mut all = Vec::new();
        let mut expect_off = 64;
        for (off, bytes) in writes {
            assert_eq!(
                off, expect_off,
                "writes are contiguous from the window base"
            );
            expect_off += bytes.len() as u32;
            all.extend_from_slice(&bytes);
        }
        assert_eq!(all, payload);
        assert_eq!(writer.active_ops(), 0);
        assert_eq!(target.active_ops(), 0);
    }

    #[test]
    fn abort_completes_pull_with_error() {
        let mut reader = MoveData::new(cfg(512, 8));
        let (op, _req) = reader.start_pull(
            PullPurpose::ProcessRead {
                pid: pid(2),
                local_off: 0,
                token: 9,
            },
            pid(1),
            AreaSel::LinkArea,
            0,
            100,
        );
        let acts = reader.on_msg(m(1), MoveDataMsg::Abort { op, reason: 3 });
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            MdAction::PullDone {
                status,
                data,
                purpose,
                ..
            } => {
                assert_eq!(*status, 3);
                assert!(data.is_empty());
                assert!(matches!(purpose, PullPurpose::ProcessRead { token: 9, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reader.active_ops(), 0);
    }

    #[test]
    fn unknown_op_messages_ignored() {
        let mut md = MoveData::new(cfg(512, 8));
        assert!(md
            .on_msg(m(1), MoveDataMsg::Ack { op: 5, seq: 0 })
            .is_empty());
        assert!(md
            .on_msg(
                m(1),
                MoveDataMsg::Data {
                    op: 5,
                    seq: 0,
                    bytes: Bytes::from_static(b"x")
                }
            )
            .is_empty());
        assert!(md
            .on_msg(
                m(1),
                MoveDataMsg::Done {
                    op: 5,
                    status: 0,
                    total: 0
                }
            )
            .is_empty());
    }

    #[test]
    fn ack_every_n_reduces_acks() {
        let mut reader = MoveData::new(MoveDataConfig {
            chunk: 100,
            window: 64,
            ack_every: 4,
        });
        let (op, _req) = reader.start_pull(
            PullPurpose::Kernel { cookie: 1 },
            pid(1),
            AreaSel::Image,
            0,
            0,
        );
        let mut acks = 0;
        for seq in 0..8 {
            for a in reader.on_msg(
                m(1),
                MoveDataMsg::Data {
                    op,
                    seq,
                    bytes: Bytes::from_static(&[0; 100]),
                },
            ) {
                if matches!(
                    a,
                    MdAction::Send {
                        msg: MoveDataMsg::Ack { .. },
                        ..
                    }
                ) {
                    acks += 1;
                }
            }
        }
        assert_eq!(acks, 2, "8 packets, ack every 4");
    }

    #[test]
    fn abort_ops_touching_cleans_all_roles() {
        let mut md = MoveData::new(cfg(512, 8));
        // A user pull by pid 3.
        md.start_pull(
            PullPurpose::ProcessRead {
                pid: pid(3),
                local_off: 0,
                token: 1,
            },
            pid(9),
            AreaSel::LinkArea,
            0,
            10,
        );
        // An inbound push into pid 3's window.
        md.accept_push(0x8001, m(2), pid(3), 0, 100);
        // An outbound push originated by pid 3 (go-ahead already received).
        let (op, _) = md.start_push(
            (pid(3), 2),
            Bytes::from_static(&[1, 2, 3]),
            pid(9),
            AreaSel::LinkArea,
            0,
        );
        md.on_msg(m(2), MoveDataMsg::Ack { op, seq: GO_SEQ });
        // An unrelated kernel pull survives.
        md.start_pull(
            PullPurpose::Kernel { cookie: 5 },
            pid(8),
            AreaSel::Image,
            0,
            0,
        );
        assert!(md.has_ops_touching(pid(3)));
        let actions = md.abort_ops_touching(pid(3));
        assert!(!md.has_ops_touching(pid(3)));
        assert_eq!(md.active_ops(), 1, "only the unrelated kernel pull remains");
        let aborts = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    MdAction::Send {
                        msg: MoveDataMsg::Abort { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(aborts, 2, "peer aborts for inbound and outbound pushes");
        assert!(actions
            .iter()
            .any(|a| matches!(a, MdAction::PullDone { status: 9, .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, MdAction::PushDone { status: 9, .. })));
    }
}
