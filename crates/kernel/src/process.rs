//! The process: image, state, link table, message queue (Figure 2-2).
//!
//! DEMOS/MP keeps a *concise process state*: "there is no process state
//! hidden in the various functional modules of the operating system" (§7).
//! Everything the destination kernel needs is in exactly three blobs,
//! matching the three data moves of §3.1 step 4–5 and the sizes §6 reports:
//!
//! * **resident (non-swappable) state** (~250 bytes): execution status,
//!   dispatch information (a saved register area), memory tables, timers,
//!   accounting;
//! * **swappable state** (~600 bytes, scaling with the link table): the
//!   link table, communication accounting, and message-queue header;
//! * the **memory image** (code + data + stack), dominating for
//!   non-trivial processes.
//!
//! The message queue itself is *not* part of the state: queued messages
//! are individually forwarded in migration step 6.

use std::collections::{BTreeMap, VecDeque};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{Wire, WireError};
use demos_types::{Duration, MachineId, Message, ProcessId, Time};

use crate::image::{ImageLayout, ProcessImage};
use crate::linktable::LinkTable;
use crate::program::Program;

/// Scheduling status of a process. Deliberately *not* changed by
/// migration: "no change is made to the recorded state of the process …
/// since the process will (at least initially) be in the same state when
/// it reaches its destination processor" (§3.1 step 1). The in-migration
/// condition is a separate flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecStatus {
    /// Runnable: has messages (or a pending start) to process.
    Ready,
    /// Blocked waiting for a message.
    Waiting,
    /// Suspended by a control operation; not scheduled even if messages
    /// arrive.
    Suspended,
}

impl ExecStatus {
    fn to_u8(self) -> u8 {
        match self {
            ExecStatus::Ready => 0,
            ExecStatus::Waiting => 1,
            ExecStatus::Suspended => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => ExecStatus::Ready,
            1 => ExecStatus::Waiting,
            2 => ExecStatus::Suspended,
            _ => {
                return Err(WireError::BadTag {
                    what: "ExecStatus",
                    tag: v as u16,
                })
            }
        })
    }
}

/// A pending timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerEntry {
    /// When it fires.
    pub at: Time,
    /// Token passed back to the program.
    pub token: u64,
}

/// Size of the simulated dispatch save area (register file, PSW, kernel
/// context) included in the resident state. The Z8000 context of the
/// original plus kernel bookkeeping; chosen so the resident state lands
/// near the paper's ~250 bytes.
pub const DISPATCH_SAVE_BYTES: usize = 128;

/// Simulated per-segment memory descriptors (base, limit, flags × 3
/// segments) in the resident state's memory tables.
pub const MEMORY_TABLE_BYTES: usize = 27;

/// Simulated I/O-port and kernel-stack context bytes in the resident state.
pub const KERNEL_CONTEXT_BYTES: usize = 40;

/// One process.
pub struct Process {
    /// Immutable system-wide identifier.
    pub pid: ProcessId,
    /// Scheduling status (preserved across migration).
    pub status: ExecStatus,
    /// Whether `on_start` has run.
    pub started: bool,
    /// Scheduling priority (lower runs first within a machine).
    pub priority: u8,
    /// System processes may use privileged kernel operations.
    pub privileged: bool,
    /// Currently being migrated: frozen for execution and normal kernel
    /// receives, while arriving messages accumulate in the queue (§3.1).
    pub in_migration: bool,
    /// Declared segment sizes.
    pub layout: ImageLayout,
    /// Memory image.
    pub image: ProcessImage,
    /// Link table (swappable state).
    pub links: LinkTable,
    /// Incoming message queue.
    pub queue: VecDeque<Message>,
    /// Pending timers, unordered (the kernel scans for due entries).
    pub timers: Vec<TimerEntry>,
    /// The running program. `None` transiently while a handler executes,
    /// or after the image arrived but before instantiation.
    pub program: Option<Box<dyn Program>>,
    /// Virtual CPU consumed.
    pub cpu_used: Duration,
    /// Messages handled.
    pub msgs_handled: u64,
    /// Bytes sent per destination machine (communication accounting for
    /// the affinity policy; part of the swappable state).
    pub bytes_sent_to: BTreeMap<MachineId, u64>,
    /// Creation time.
    pub created_at: Time,
    /// Machine this process most recently migrated from — the backward
    /// pointer along the migration path used for forwarding-address
    /// garbage collection (§4).
    pub migrated_from: Option<MachineId>,
    /// Completed migrations.
    pub migrations: u32,
    /// Scheduler bookkeeping: currently enqueued on the run queue
    /// (not process state; never serialized).
    pub in_runq: bool,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("status", &self.status)
            .field("in_migration", &self.in_migration)
            .field("links", &self.links.len())
            .field("queue", &self.queue.len())
            .finish()
    }
}

impl Process {
    /// Create a fresh process running `program` (registered as `name`).
    pub fn new(
        pid: ProcessId,
        name: &str,
        program: Box<dyn Program>,
        layout: ImageLayout,
        privileged: bool,
        now: Time,
    ) -> Self {
        let image = ProcessImage::build(name, &program.save(), layout);
        Process {
            pid,
            status: ExecStatus::Ready,
            started: false,
            priority: 100,
            privileged,
            in_migration: false,
            layout,
            image,
            links: LinkTable::new(),
            queue: VecDeque::new(),
            timers: Vec::new(),
            program: Some(program),
            cpu_used: Duration::ZERO,
            msgs_handled: 0,
            bytes_sent_to: BTreeMap::new(),
            created_at: now,
            migrated_from: None,
            migrations: 0,
            in_runq: false,
        }
    }

    /// Whether the scheduler may run this process now.
    pub fn runnable(&self) -> bool {
        !self.in_migration
            && self.status == ExecStatus::Ready
            && (self.program.is_some())
            && (!self.started || !self.queue.is_empty())
    }

    /// Re-serialize the program state into the data segment — done when
    /// the process is frozen for migration so the image bytes are current.
    pub fn refresh_image(&mut self) {
        if let Some(p) = &self.program {
            let min = self.layout.data as usize;
            self.image.store_state(&p.save(), min);
        }
    }

    /// Serialize the non-swappable (resident) state (§6: ~250 bytes).
    pub fn serialize_resident(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.pid.encode(&mut buf);
        buf.put_u8(self.status.to_u8());
        buf.put_u8(self.started as u8);
        buf.put_u8(self.priority);
        buf.put_u8(self.privileged as u8);
        self.layout.encode(&mut buf);
        buf.put_u64(self.cpu_used.as_micros());
        buf.put_u64(self.msgs_handled);
        buf.put_u64(self.created_at.as_micros());
        buf.put_u32(self.migrations);
        match self.migrated_from {
            Some(m) => {
                buf.put_u8(1);
                m.encode(&mut buf);
            }
            None => {
                buf.put_u8(0);
                buf.put_u16(0);
            }
        }
        buf.put_u16(self.timers.len() as u16);
        for t in &self.timers {
            buf.put_u64(t.at.as_micros());
            buf.put_u64(t.token);
        }
        // Dispatch save area, memory tables, kernel context: simulated
        // fixed-size regions that make the record faithful in size.
        buf.put_slice(&[0u8; DISPATCH_SAVE_BYTES]);
        buf.put_slice(&[0u8; MEMORY_TABLE_BYTES]);
        buf.put_slice(&[0u8; KERNEL_CONTEXT_BYTES]);
        buf.to_vec()
    }

    /// Serialize the swappable state: link table, communication
    /// accounting, message-queue header (§6: ~600 bytes, "depending on the
    /// size of the link table").
    pub fn serialize_swappable(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.links.encode(&mut buf);
        buf.put_u16(self.bytes_sent_to.len() as u16);
        for (&m, &bytes) in &self.bytes_sent_to {
            m.encode(&mut buf);
            buf.put_u64(bytes);
        }
        buf.put_u16(self.queue.len() as u16);
        buf.to_vec()
    }

    /// Rebuild a process from the three migration blobs. The program is
    /// *not* instantiated here (see [`Process::instantiate`]); the caller
    /// supplies the image exactly as transferred.
    pub fn from_migrated(
        resident: &[u8],
        swappable: &[u8],
        image: ProcessImage,
    ) -> Result<Process, WireError> {
        let mut buf = Bytes::copy_from_slice(resident);
        let pid = ProcessId::decode(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(WireError::Truncated("resident flags"));
        }
        let status = ExecStatus::from_u8(buf.get_u8())?;
        let started = buf.get_u8() != 0;
        let priority = buf.get_u8();
        let privileged = buf.get_u8() != 0;
        let layout = ImageLayout::decode(&mut buf)?;
        if buf.remaining() < 28 {
            return Err(WireError::Truncated("resident accounting"));
        }
        let cpu_used = Duration::from_micros(buf.get_u64());
        let msgs_handled = buf.get_u64();
        let created_at = Time::from_micros(buf.get_u64());
        let migrations = buf.get_u32();
        let has_prev = buf.get_u8() != 0;
        let prev = MachineId::decode(&mut buf)?;
        let migrated_from = has_prev.then_some(prev);
        if buf.remaining() < 2 {
            return Err(WireError::Truncated("resident timers"));
        }
        let n_timers = buf.get_u16() as usize;
        let mut timers = Vec::with_capacity(n_timers);
        for _ in 0..n_timers {
            if buf.remaining() < 16 {
                return Err(WireError::Truncated("timer entry"));
            }
            timers.push(TimerEntry {
                at: Time::from_micros(buf.get_u64()),
                token: buf.get_u64(),
            });
        }
        let fixed = DISPATCH_SAVE_BYTES + MEMORY_TABLE_BYTES + KERNEL_CONTEXT_BYTES;
        if buf.remaining() < fixed {
            return Err(WireError::Truncated("dispatch save area"));
        }

        let mut sbuf = Bytes::copy_from_slice(swappable);
        let links = LinkTable::decode(&mut sbuf)?;
        if sbuf.remaining() < 2 {
            return Err(WireError::Truncated("swappable comm table"));
        }
        let n_comm = sbuf.get_u16() as usize;
        let mut bytes_sent_to = BTreeMap::new();
        for _ in 0..n_comm {
            let m = MachineId::decode(&mut sbuf)?;
            if sbuf.remaining() < 8 {
                return Err(WireError::Truncated("comm entry"));
            }
            bytes_sent_to.insert(m, sbuf.get_u64());
        }

        Ok(Process {
            pid,
            status,
            started,
            priority,
            privileged,
            in_migration: false,
            layout,
            image,
            links,
            queue: VecDeque::new(),
            timers,
            program: None,
            cpu_used,
            msgs_handled,
            bytes_sent_to,
            created_at,
            migrated_from,
            migrations,
            in_runq: false,
        })
    }

    /// Instantiate the program from the image via the registry — the last
    /// act of migration step 5 / first act of step 8.
    pub fn instantiate(&mut self, registry: &crate::program::Registry) -> demos_types::Result<()> {
        let name = self
            .image
            .program_name()
            .map_err(demos_types::DemosError::Wire)?;
        let state = self
            .image
            .load_state()
            .map_err(demos_types::DemosError::Wire)?;
        self.program = Some(registry.instantiate(&name, &state)?);
        Ok(())
    }

    /// Earliest pending timer.
    pub fn next_timer(&self) -> Option<Time> {
        self.timers.iter().map(|t| t.at).min()
    }

    /// Remove and return all timers due at or before `now`.
    pub fn take_due_timers(&mut self, now: Time) -> Vec<TimerEntry> {
        let mut due: Vec<TimerEntry> = Vec::new();
        self.timers.retain(|t| {
            if t.at <= now {
                due.push(*t);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|t| (t.at, t.token));
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Ctx, Delivered, Registry};
    use demos_types::Link;

    struct Counter(u64);
    impl Program for Counter {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Delivered) {
            self.0 += 1;
        }
        fn save(&self) -> Vec<u8> {
            self.0.to_be_bytes().to_vec()
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("counter", |state| {
            let mut b = [0u8; 8];
            if state.len() == 8 {
                b.copy_from_slice(state);
            }
            Box::new(Counter(u64::from_be_bytes(b)))
        });
        r
    }

    fn pid() -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: 7,
        }
    }

    fn proc_with_links(n: usize) -> Process {
        let mut p = Process::new(
            pid(),
            "counter",
            Box::new(Counter(3)),
            ImageLayout::default(),
            false,
            Time(10),
        );
        for i in 0..n {
            p.links.insert(Link::to(
                ProcessId {
                    creating_machine: MachineId(1),
                    local_uid: i as u32,
                }
                .at(MachineId(1)),
            ));
        }
        p
    }

    #[test]
    fn resident_state_is_about_250_bytes() {
        let p = proc_with_links(0);
        let r = p.serialize_resident();
        // §6: "the non-swappable state uses about 250 bytes".
        assert!(
            (230..=270).contains(&r.len()),
            "resident state was {} bytes, expected ~250",
            r.len()
        );
    }

    #[test]
    fn swappable_state_scales_with_link_table() {
        // §6: "the swappable state uses about 600 bytes (depending on the
        // size of the link table)".
        let small = proc_with_links(0).serialize_swappable().len();
        let typical = proc_with_links(25).serialize_swappable().len();
        let big = proc_with_links(40).serialize_swappable().len();
        assert!(typical > small && big > typical);
        assert!(
            (500..=700).contains(&typical),
            "25-link swappable was {typical} bytes"
        );
        assert_eq!(big - typical, 15 * 22, "each link costs a fixed 22 bytes");
    }

    #[test]
    fn migration_blob_roundtrip_preserves_state() {
        let mut p = proc_with_links(3);
        p.status = ExecStatus::Waiting;
        p.started = true;
        p.cpu_used = Duration::from_millis(5);
        p.msgs_handled = 9;
        p.migrations = 1;
        p.migrated_from = Some(MachineId(2));
        p.timers.push(TimerEntry {
            at: Time(99),
            token: 4,
        });
        p.bytes_sent_to.insert(MachineId(1), 1234);
        p.refresh_image();

        let resident = p.serialize_resident();
        let swappable = p.serialize_swappable();
        let image = p.image.clone();
        let mut q = Process::from_migrated(&resident, &swappable, image).unwrap();

        assert_eq!(q.pid, p.pid);
        assert_eq!(
            q.status,
            ExecStatus::Waiting,
            "status preserved across migration"
        );
        assert!(q.started);
        assert_eq!(q.links, p.links);
        assert_eq!(q.timers, p.timers);
        assert_eq!(q.bytes_sent_to, p.bytes_sent_to);
        assert_eq!(q.migrated_from, Some(MachineId(2)));
        assert_eq!(q.migrations, 1);

        q.instantiate(&registry()).unwrap();
        assert_eq!(q.program.unwrap().save(), 3u64.to_be_bytes().to_vec());
    }

    #[test]
    fn truncated_blobs_rejected() {
        let p = proc_with_links(2);
        let resident = p.serialize_resident();
        let swappable = p.serialize_swappable();
        assert!(Process::from_migrated(&resident[..20], &swappable, p.image.clone()).is_err());
        assert!(Process::from_migrated(&resident, &swappable[..3], p.image.clone()).is_err());
    }

    #[test]
    fn runnable_logic() {
        let mut p = proc_with_links(0);
        assert!(p.runnable(), "fresh process runs on_start");
        p.started = true;
        assert!(!p.runnable(), "no messages, nothing to do");
        p.queue.push_back(dummy_msg());
        assert!(p.runnable());
        p.in_migration = true;
        assert!(!p.runnable(), "frozen during migration");
        p.in_migration = false;
        p.status = ExecStatus::Suspended;
        assert!(!p.runnable());
    }

    fn dummy_msg() -> Message {
        Message {
            header: demos_types::MsgHeader {
                dest: pid().at(MachineId(0)),
                src: pid(),
                src_machine: MachineId(0),
                msg_type: 0x1000,
                flags: demos_types::MsgFlags::NONE,
                hops: 0,
            },
            links: vec![],
            payload: Bytes::new(),
            corr: demos_types::CorrId::NONE,
        }
    }

    #[test]
    fn due_timers_extracted_in_order() {
        let mut p = proc_with_links(0);
        p.timers = vec![
            TimerEntry {
                at: Time(30),
                token: 3,
            },
            TimerEntry {
                at: Time(10),
                token: 1,
            },
            TimerEntry {
                at: Time(20),
                token: 2,
            },
            TimerEntry {
                at: Time(99),
                token: 9,
            },
        ];
        let due = p.take_due_timers(Time(25));
        assert_eq!(due.iter().map(|t| t.token).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(p.timers.len(), 2);
        assert_eq!(p.next_timer(), Some(Time(30)));
    }

    #[test]
    fn refresh_image_captures_current_state() {
        let mut p = proc_with_links(0);
        if let Some(prog) = &mut p.program {
            // Simulate progress: counter now at 3 (constructed) — mutate via save/restore.
            let _ = prog;
        }
        p.refresh_image();
        assert_eq!(&p.image.load_state().unwrap()[..], &3u64.to_be_bytes()[..]);
    }
}
