//! Structured event trace.
//!
//! Kernels append [`TraceEvent`]s to their [`crate::Outbox`]; the
//! simulation harness timestamps and collects them. The experiment
//! binaries reconstruct every table of the paper's cost analysis from
//! these events (administrative message counts, forwarding overhead,
//! link-update convergence, migration step timings).

use demos_types::{CorrId, MachineId, ProcessId, Time};

/// One traced kernel event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A process was created.
    Spawned {
        /// The new process.
        pid: ProcessId,
        /// Registered program name.
        program: String,
    },
    /// A process terminated.
    Exited {
        /// The process.
        pid: ProcessId,
    },
    /// A message entered the delivery system: the first kernel to see it
    /// stamped it with a fresh correlation id. Every later event carrying
    /// the same id — on any machine — belongs to this message's journey.
    Submitted {
        /// Correlation id assigned at send time.
        corr: CorrId,
        /// Destination process.
        dest: ProcessId,
        /// Message type tag.
        msg_type: u16,
    },
    /// A message was placed on a local process's queue.
    Enqueued {
        /// Correlation id of the message.
        corr: CorrId,
        /// Receiving process.
        pid: ProcessId,
        /// Message type tag.
        msg_type: u16,
        /// Whether the message had been forwarded at least once.
        forwarded: bool,
        /// Forwarding hops the message took.
        hops: u8,
    },
    /// A message was received by the kernel (`DELIVERTOKERNEL`).
    KernelReceived {
        /// Correlation id of the message.
        corr: CorrId,
        /// Process the message was addressed to.
        pid: ProcessId,
        /// Message type tag.
        msg_type: u16,
    },
    /// A message hit a forwarding address and was resubmitted (§4).
    ForwardedMessage {
        /// Correlation id of the chased message.
        corr: CorrId,
        /// The migrated process the message was chasing.
        pid: ProcessId,
        /// Where the forwarding address pointed.
        to: MachineId,
        /// Message type tag.
        msg_type: u16,
    },
    /// A link-update message was sent back to a sender's kernel (§5).
    LinkUpdateSent {
        /// Correlation id of the chased message that triggered the update
        /// (the update inherits it, so the whole repair is one journey).
        corr: CorrId,
        /// Whose links will be patched.
        sender: ProcessId,
        /// The migrated process.
        migrated: ProcessId,
        /// Its new home.
        new_machine: MachineId,
    },
    /// Links were patched on receipt of a link update (§5).
    LinkUpdateApplied {
        /// Correlation id inherited from the chased message.
        corr: CorrId,
        /// Process whose table was patched.
        sender: ProcessId,
        /// The migrated process.
        migrated: ProcessId,
        /// Number of links rewritten.
        patched: usize,
    },
    /// A message could not be delivered (no process, no forwarding
    /// address — or forwarding disabled in the ablation mode, §4).
    NonDeliverable {
        /// Correlation id of the undeliverable message.
        corr: CorrId,
        /// Destination that does not exist here.
        pid: ProcessId,
        /// Message type tag.
        msg_type: u16,
    },
    /// Migration lifecycle marker (steps of §3.1).
    Migration {
        /// The migrating process.
        pid: ProcessId,
        /// Which step (see [`MigrationPhase`]).
        phase: MigrationPhase,
        /// Bytes attributable to the step: total offered size on
        /// `Offered`, state bytes received on `StateTransferred`, the
        /// full transferred total on `ImageTransferred`; zero elsewhere.
        /// The phase profiler turns these into §6's cost-vs-size curves.
        bytes: u64,
    },
    /// A forwarding address was installed (step 7).
    ForwardingInstalled {
        /// The migrated process.
        pid: ProcessId,
        /// Destination it points to.
        to: MachineId,
    },
    /// A forwarding address was garbage-collected after a death notice.
    ForwardingCollected {
        /// The dead process.
        pid: ProcessId,
    },
    /// A move-data operation finished.
    MoveDataDone {
        /// Operation id.
        op: u16,
        /// Bytes moved.
        bytes: u64,
        /// 0 = success.
        status: u8,
    },
    /// Free-form program log line.
    Log {
        /// The process that logged.
        pid: ProcessId,
        /// Message text.
        text: String,
    },
}

impl TraceEvent {
    /// The correlation id this event carries, if it is part of a message
    /// journey. Span reconstruction groups events by this key.
    pub fn corr(&self) -> Option<CorrId> {
        match *self {
            TraceEvent::Submitted { corr, .. }
            | TraceEvent::Enqueued { corr, .. }
            | TraceEvent::KernelReceived { corr, .. }
            | TraceEvent::ForwardedMessage { corr, .. }
            | TraceEvent::LinkUpdateSent { corr, .. }
            | TraceEvent::LinkUpdateApplied { corr, .. }
            | TraceEvent::NonDeliverable { corr, .. } => {
                if corr.is_some() {
                    Some(corr)
                } else {
                    None
                }
            }
            // Listed explicitly (not `_`) so that a new event that *does*
            // carry a correlation id cannot silently vanish from spans.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::ForwardingInstalled { .. }
            | TraceEvent::ForwardingCollected { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => None,
        }
    }
}

/// The phases of the eight-step migration procedure (§3.1), as observed at
/// either the source or destination kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Step 1 (source): removed from execution, marked "in migration".
    Frozen,
    /// Step 2 (source): offer sent to the destination kernel.
    Offered,
    /// Step 3 (destination): empty process state allocated.
    Allocated,
    /// Destination refused the offer (§3.2).
    Rejected,
    /// Step 4 complete (destination): process state transferred.
    StateTransferred,
    /// Step 5 complete (destination): memory image transferred.
    ImageTransferred,
    /// Step 6 (source): pending messages forwarded.
    PendingForwarded,
    /// Step 7 (source): state reclaimed, forwarding address left.
    CleanedUp,
    /// Step 8 (destination): process restarted.
    Restarted,
    /// Migration abandoned (timeout/crash); process resumed at source.
    Aborted,
}

/// A timestamped trace record as stored by the harness.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: Time,
    /// Machine whose kernel emitted it.
    pub machine: MachineId,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let pid = ProcessId {
            creating_machine: MachineId(0),
            local_uid: 1,
        };
        let a = TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Frozen,
            bytes: 0,
        };
        let b = TraceEvent::Migration {
            pid,
            phase: MigrationPhase::Frozen,
            bytes: 0,
        };
        assert_eq!(a, b);
        assert_ne!(a, TraceEvent::Exited { pid });
    }
}
