//! Programs: the code a process runs, and the kernel-call interface.
//!
//! The paper's processes are Z8000 machine code; ours are Rust values
//! implementing [`Program`]. To keep migration byte-faithful, a program is
//! identified by a *registered name* (stored in the image's code segment)
//! and must serialize its entire state with [`Program::save`]; the
//! destination kernel re-instantiates it through the [`Registry`]. This
//! mirrors DEMOS/MP's own portability trick — "essentially the same
//! software runs on both systems" (§2) — the program travels as bytes, the
//! behaviour comes from the (identical) code installed on every machine.
//!
//! Programs interact with the world *only* through [`Ctx`] — the kernel
//! call interface. All interactions are communication-oriented (§2.1):
//! send over a link, create a link, set a timer, move data through a
//! data-area link, exit.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use demos_types::message::MAX_PAYLOAD;
use demos_types::{
    DataArea, DemosError, Duration, Link, LinkAttrs, LinkIdx, MachineId, Message, MsgFlags,
    MsgHeader, ProcessId, Result, Time,
};

use crate::linktable::LinkTable;

/// Extra message-type tags used between a kernel and its own processes
/// (never crossing the network with these meanings reserved).
pub mod local_tags {
    /// Synthetic timer-expiry message (kernel → own process).
    pub const TIMER: u16 = 0x0007;
    /// Non-deliverable notice delivered to a sender process (§4).
    pub const NON_DELIVERABLE: u16 = 0x0008;
    /// Completion notice for a user-level move-data operation.
    pub const MOVE_DATA_DONE: u16 = 0x0009;
    /// Kernel management protocol (process creation), kernel-addressed.
    pub const KERNEL_MGMT: u16 = 0x0006;
}

/// A message as seen by a program: carried links have been installed in
/// the receiving process's link table and appear as indices.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// Sender's process id.
    pub from: ProcessId,
    /// Message type tag.
    pub msg_type: u16,
    /// Payload bytes.
    pub payload: Bytes,
    /// Indices of links that arrived in the message, in order. By
    /// convention the first is the reply link.
    pub links: Vec<LinkIdx>,
    /// Whether this message passed through a forwarding address.
    pub forwarded: bool,
}

impl Delivered {
    /// The conventional reply link (first carried link), if present.
    pub fn reply(&self) -> Option<LinkIdx> {
        self.links.first().copied()
    }
}

/// How to attach a link to an outgoing message.
#[derive(Debug, Clone, Copy)]
pub enum Carry {
    /// Copy an existing link (stays in the sender's table).
    Dup(LinkIdx),
    /// Move an existing link (removed from the sender's table).
    Move(LinkIdx),
    /// Create and carry a fresh link pointing at the sender, with the
    /// given attributes (e.g. a reply link).
    New(LinkAttrs),
    /// Create and carry a fresh link pointing at the sender granting a
    /// data-area window.
    NewArea(LinkAttrs, DataArea),
}

/// A user-level move-data request buffered by [`Ctx`].
#[derive(Debug, Clone, Copy)]
pub struct MoveDataReq {
    /// Link (with a data area) authorizing the operation.
    pub link: LinkIdx,
    /// True = read remote area into local data segment; false = write
    /// local bytes into the remote area.
    pub read: bool,
    /// Offset within the remote window.
    pub remote_off: u32,
    /// Offset within the caller's own data segment.
    pub local_off: u32,
    /// Bytes to move.
    pub len: u32,
    /// Caller-chosen token echoed in the completion message.
    pub token: u16,
}

/// Buffered side effects of one program activation, applied by the kernel
/// after the handler returns.
#[derive(Debug, Default)]
pub struct Effects {
    /// Messages to submit to the delivery system.
    pub sends: Vec<Message>,
    /// Timers to arm: `(delay, token)`.
    pub timers: Vec<(Duration, u64)>,
    /// Move-data operations to start.
    pub movedata: Vec<MoveDataReq>,
    /// Process requested termination.
    pub exit: bool,
    /// Virtual CPU consumed by the handler (beyond the per-activation
    /// base cost).
    pub cpu: Duration,
    /// Program log lines (traced).
    pub logs: Vec<String>,
}

/// The kernel-call interface handed to a program during an activation.
///
/// "All interactions between one process and another or between a process
/// and the system are via communication-oriented kernel calls" (§2.1).
pub struct Ctx<'a> {
    pub(crate) now: Time,
    pub(crate) pid: ProcessId,
    pub(crate) machine: MachineId,
    pub(crate) links: &'a mut LinkTable,
    pub(crate) effects: &'a mut Effects,
}

impl<'a> Ctx<'a> {
    /// Construct a context (used by the kernel and by unit tests).
    pub fn new(
        now: Time,
        pid: ProcessId,
        machine: MachineId,
        links: &'a mut LinkTable,
        effects: &'a mut Effects,
    ) -> Self {
        Ctx {
            now,
            pid,
            machine,
            links,
            effects,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This process's immutable identifier.
    pub fn self_pid(&self) -> ProcessId {
        self.pid
    }

    /// The machine this process currently runs on. (A correct program
    /// never needs this — communication is location-transparent — but
    /// tests and instrumentation do.)
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Create a link pointing at this process ("the conceptual control of
    /// a link is vested in the process that the link addresses — which is
    /// always the process that created it", §2.1).
    pub fn create_link(&mut self, attrs: LinkAttrs) -> LinkIdx {
        self.links.insert(Link {
            addr: self.pid.at(self.machine),
            attrs,
            area: None,
        })
    }

    /// Create a link to this process granting a data-area window.
    pub fn create_area_link(&mut self, attrs: LinkAttrs, area: DataArea) -> LinkIdx {
        self.links.insert(
            Link {
                addr: self.pid.at(self.machine),
                attrs,
                area: None,
            }
            .with_area(area, attrs),
        )
    }

    /// Duplicate an existing link into a new slot.
    pub fn dup_link(&mut self, idx: LinkIdx) -> Result<LinkIdx> {
        self.links.duplicate(idx)
    }

    /// Destroy a link.
    pub fn destroy_link(&mut self, idx: LinkIdx) -> Result<()> {
        self.links.remove(idx).map(drop)
    }

    /// Inspect a link.
    pub fn link(&self, idx: LinkIdx) -> Result<Link> {
        self.links.get(idx)
    }

    /// Install an externally supplied link value (used by system processes
    /// that receive links and re-distribute them, e.g. the switchboard).
    pub fn install_link(&mut self, link: Link) -> LinkIdx {
        self.links.insert(link)
    }

    /// Duplicate a link with the `DELIVERTOKERNEL` attribute added —
    /// system processes derive control paths to processes this way ("a
    /// link with this attribute looks the same as a link to the process to
    /// which it points", §2.2).
    pub fn dup_as_dtk(&mut self, idx: LinkIdx) -> Result<LinkIdx> {
        let mut link = self.links.get(idx)?;
        link.attrs = link.attrs.union(LinkAttrs::DELIVER_TO_KERNEL);
        Ok(self.links.insert(link))
    }

    /// Send a message over `via`, carrying `carry` links.
    ///
    /// Consumes `via` if it is a reply link. Returns the error without
    /// sending if the link is missing, dead, or the payload/links exceed
    /// protocol limits.
    pub fn send(
        &mut self,
        via: LinkIdx,
        msg_type: u16,
        payload: impl Into<Bytes>,
        carry: &[Carry],
    ) -> Result<()> {
        let payload: Bytes = payload.into();
        if payload.len() > MAX_PAYLOAD {
            return Err(DemosError::TooLarge {
                what: "payload",
                len: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        if carry.len() > demos_types::message::MAX_CARRIED_LINKS {
            return Err(DemosError::TooLarge {
                what: "carried links",
                len: carry.len(),
                max: demos_types::message::MAX_CARRIED_LINKS,
            });
        }
        // Validate carried links before consuming the send link, so a
        // failed send has no side effects.
        for c in carry {
            if let Carry::Dup(i) | Carry::Move(i) = c {
                self.links.get(*i)?;
            }
        }
        let link = self.links.use_for_send(via)?;
        let mut links = Vec::with_capacity(carry.len());
        for c in carry {
            links.push(match c {
                Carry::Dup(i) => self.links.get(*i)?,
                Carry::Move(i) => self.links.remove(*i)?,
                Carry::New(attrs) => Link {
                    addr: self.pid.at(self.machine),
                    attrs: *attrs,
                    area: None,
                },
                Carry::NewArea(attrs, area) => Link {
                    addr: self.pid.at(self.machine),
                    attrs: *attrs,
                    area: None,
                }
                .with_area(*area, *attrs),
            });
        }
        let mut flags = MsgFlags::NONE;
        if link.is_dtk() {
            flags = flags | MsgFlags::DELIVER_TO_KERNEL;
        }
        if link.is_reply() {
            flags = flags | MsgFlags::REPLY;
        }
        self.effects.sends.push(Message {
            header: MsgHeader {
                dest: link.addr,
                src: self.pid,
                src_machine: self.machine,
                msg_type,
                flags,
                hops: 0,
            },
            links,
            payload,
            corr: demos_types::CorrId::NONE,
        });
        Ok(())
    }

    /// Arm a timer: the program's `on_timer` runs `delay` from now with
    /// `token`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.effects.timers.push((delay, token));
    }

    /// Start a user-level move-data operation (§2.2). Completion arrives
    /// later as a [`local_tags::MOVE_DATA_DONE`] message.
    pub fn move_data(&mut self, req: MoveDataReq) -> Result<()> {
        let link = self.links.get(req.link)?;
        let need = if req.read {
            LinkAttrs::DATA_READ
        } else {
            LinkAttrs::DATA_WRITE
        };
        if !link.attrs.contains(need) {
            return Err(DemosError::LinkAccess {
                link: req.link,
                need: if req.read { "DATA_READ" } else { "DATA_WRITE" },
            });
        }
        if link.area.is_none() {
            return Err(DemosError::LinkAccess {
                link: req.link,
                need: "data area",
            });
        }
        self.effects.movedata.push(req);
        Ok(())
    }

    /// Charge extra virtual CPU time to this activation (models
    /// computation; the load-balancing experiments rely on it).
    pub fn cpu(&mut self, d: Duration) {
        self.effects.cpu += d;
    }

    /// Terminate this process after the handler returns.
    pub fn exit(&mut self) {
        self.effects.exit = true;
    }

    /// Emit a trace log line.
    pub fn log(&mut self, text: impl Into<String>) {
        self.effects.logs.push(text.into());
    }
}

/// The behaviour of a process.
///
/// Handlers run to completion (one message per scheduling quantum) and
/// must not block; long computations are modelled by charging virtual CPU
/// with [`Ctx::cpu`].
pub trait Program: Send {
    /// Called once when the process first runs (not called again after a
    /// migration — execution state must be inside the program value).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handle one message from the process's queue.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered);

    /// Handle a timer armed with [`Ctx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// A remote kernel wrote `bytes` at `off` of this process's data
    /// segment through a data-area link (§2.2). Programs that expose a
    /// buffer through such links ingest the write here; the default
    /// ignores it (the bytes still land in the segment, where the next
    /// area read — or a migration image — sees them only if the program
    /// reflects them into its state).
    fn on_data_write(&mut self, _off: u32, _bytes: &[u8]) {}

    /// Serialize the complete program state. Called at migration time to
    /// refresh the data segment (and by checkpointing).
    fn save(&self) -> Vec<u8>;
}

/// Constructor for a registered program: rebuilds the program from
/// serialized state.
pub type Ctor = Box<dyn Fn(&[u8]) -> Box<dyn Program> + Send + Sync>;

/// Maps program names to constructors. Every machine holds (a reference
/// to) the same registry — the analogue of installing the same binaries on
/// every node.
#[derive(Default)]
pub struct Registry {
    ctors: BTreeMap<String, Ctor>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `name`; later registrations replace earlier ones.
    pub fn register<F>(&mut self, name: &str, ctor: F)
    where
        F: Fn(&[u8]) -> Box<dyn Program> + Send + Sync + 'static,
    {
        self.ctors.insert(name.to_string(), Box::new(ctor));
    }

    /// Instantiate program `name` from `state`.
    pub fn instantiate(&self, name: &str, state: &[u8]) -> Result<Box<dyn Program>> {
        let ctor = self
            .ctors
            .get(name)
            .ok_or_else(|| DemosError::UnknownProgram(name.into()))?;
        Ok(ctor(state))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// Wrap in an [`Arc`] for sharing across kernels.
    pub fn into_shared(self) -> Arc<Registry> {
        Arc::new(self)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("programs", &self.ctors.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::ProcessAddress;

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: u,
        }
    }

    fn remote_addr() -> ProcessAddress {
        pid(9).at(MachineId(1))
    }

    fn ctx_parts() -> (LinkTable, Effects) {
        (LinkTable::new(), Effects::default())
    }

    #[test]
    fn send_builds_message_with_header() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()));
        let mut ctx = Ctx::new(Time(5), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.send(
            via,
            0x1001,
            Bytes::from_static(b"hi"),
            &[Carry::New(LinkAttrs::REPLY)],
        )
        .unwrap();
        let m = &fx.sends[0];
        assert_eq!(m.header.dest, remote_addr());
        assert_eq!(m.header.src, pid(1));
        assert_eq!(m.header.src_machine, MachineId(0));
        assert_eq!(m.links.len(), 1);
        assert!(m.links[0].is_reply());
        assert_eq!(
            m.links[0].target(),
            pid(1),
            "reply link points back at sender"
        );
    }

    #[test]
    fn send_over_dtk_link_sets_flag() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::deliver_to_kernel(remote_addr()));
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.send(via, 1, Bytes::new(), &[]).unwrap();
        assert!(fx.sends[0]
            .header
            .flags
            .contains(MsgFlags::DELIVER_TO_KERNEL));
    }

    #[test]
    fn reply_link_consumed_by_send() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()).reply());
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.send(via, 1, Bytes::new(), &[]).unwrap();
        assert!(ctx.send(via, 1, Bytes::new(), &[]).is_err());
        assert_eq!(fx.sends.len(), 1);
    }

    #[test]
    fn carry_move_removes_link() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()));
        let carried = lt.insert(Link::to(pid(3).at(MachineId(2))));
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.send(via, 1, Bytes::new(), &[Carry::Move(carried)])
            .unwrap();
        assert!(lt.get(carried).is_err(), "moved link left the table");
        assert_eq!(fx.sends[0].links[0].target(), pid(3));
    }

    #[test]
    fn carry_dup_keeps_link() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()));
        let carried = lt.insert(Link::to(pid(3).at(MachineId(2))));
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.send(via, 1, Bytes::new(), &[Carry::Dup(carried)])
            .unwrap();
        assert!(lt.get(carried).is_ok());
    }

    #[test]
    fn failed_send_has_no_side_effects() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()).reply());
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        // Carrying a nonexistent link fails before the reply link is consumed.
        let err = ctx.send(via, 1, Bytes::new(), &[Carry::Dup(LinkIdx(99))]);
        assert!(err.is_err());
        assert!(
            lt.get(via).is_ok(),
            "reply link not consumed by failed send"
        );
        assert!(fx.sends.is_empty());
    }

    #[test]
    fn oversized_payload_rejected() {
        let (mut lt, mut fx) = ctx_parts();
        let via = lt.insert(Link::to(remote_addr()));
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            ctx.send(via, 1, Bytes::from(big), &[]),
            Err(DemosError::TooLarge { .. })
        ));
    }

    #[test]
    fn move_data_requires_rights_and_area() {
        let (mut lt, mut fx) = ctx_parts();
        let no_rights = lt.insert(Link::to(remote_addr()));
        let no_area = lt.insert(Link {
            addr: remote_addr(),
            attrs: LinkAttrs::DATA_READ,
            area: None,
        });
        let ok = lt.insert(Link::to(remote_addr()).with_area(
            DataArea {
                offset: 0,
                len: 128,
            },
            LinkAttrs::DATA_READ,
        ));
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        let req = |link| MoveDataReq {
            link,
            read: true,
            remote_off: 0,
            local_off: 0,
            len: 16,
            token: 1,
        };
        assert!(ctx.move_data(req(no_rights)).is_err());
        assert!(ctx.move_data(req(no_area)).is_err());
        ctx.move_data(req(ok)).unwrap();
        assert_eq!(fx.movedata.len(), 1);
    }

    #[test]
    fn registry_roundtrip() {
        struct Echo(Vec<u8>);
        impl Program for Echo {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Delivered) {}
            fn save(&self) -> Vec<u8> {
                self.0.clone()
            }
        }
        let mut reg = Registry::new();
        reg.register("echo", |state| Box::new(Echo(state.to_vec())));
        assert!(reg.contains("echo"));
        let p = reg.instantiate("echo", b"abc").unwrap();
        assert_eq!(p.save(), b"abc");
        assert!(reg.instantiate("nope", b"").is_err());
    }

    #[test]
    fn timers_and_exit_buffered() {
        let (mut lt, mut fx) = ctx_parts();
        let mut ctx = Ctx::new(Time(0), pid(1), MachineId(0), &mut lt, &mut fx);
        ctx.set_timer(Duration::from_millis(3), 42);
        ctx.cpu(Duration::from_micros(100));
        ctx.exit();
        assert_eq!(fx.timers, vec![(Duration::from_millis(3), 42)]);
        assert_eq!(fx.cpu, Duration::from_micros(100));
        assert!(fx.exit);
    }
}
