//! Process memory images.
//!
//! A DEMOS/MP process (Figure 2-2) consists of the program being executed
//! together with its data and stack. We cannot ship real machine code
//! between simulated machines, so an image's *code segment* carries the
//! program's registered name (plus padding to the declared code size) and
//! its *data segment* carries the program's serialized state (plus padding
//! to the declared data size). Migration transfers these exact bytes with
//! the move-data facility, so transfer cost scales with image size the way
//! the paper describes (§6: "for non-trivial processes, the size of the
//! program and data overshadow the size of the system information").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};

/// Maximum accepted program-name length in a code segment.
const MAX_NAME: usize = 256;
/// Maximum accepted serialized program state.
const MAX_STATE: usize = 16 << 20;

/// Declared segment sizes for a process image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageLayout {
    /// Code segment bytes (≥ name length + 2).
    pub code: u32,
    /// Data segment bytes (≥ serialized state length + 4).
    pub data: u32,
    /// Stack segment bytes.
    pub stack: u32,
}

impl Default for ImageLayout {
    fn default() -> Self {
        // A small utility process of the era: 8 KiB text, 4 KiB data,
        // 2 KiB stack.
        ImageLayout {
            code: 8 * 1024,
            data: 4 * 1024,
            stack: 2 * 1024,
        }
    }
}

impl ImageLayout {
    /// Total image bytes.
    pub fn total(&self) -> u32 {
        self.code + self.data + self.stack
    }
}

/// The memory of one process: code, data and stack segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessImage {
    /// Code segment: `[name_len u16][name][zero padding]`.
    pub code: Vec<u8>,
    /// Data segment: `[state_len u32][state][zero padding]`.
    pub data: Vec<u8>,
    /// Stack segment (simulated; zeroed).
    pub stack: Vec<u8>,
}

impl ProcessImage {
    /// Build an image for program `name` with initial serialized `state`.
    ///
    /// Segments are padded (never truncated) to the layout's declared
    /// sizes, so `total_len() >= layout.total()` and transfer costs track
    /// the declared process size.
    pub fn build(name: &str, state: &[u8], layout: ImageLayout) -> Self {
        let mut code = Vec::with_capacity(layout.code as usize);
        code.extend_from_slice(&(name.len() as u16).to_be_bytes());
        code.extend_from_slice(name.as_bytes());
        if code.len() < layout.code as usize {
            code.resize(layout.code as usize, 0);
        }
        let mut image = ProcessImage {
            code,
            data: Vec::new(),
            stack: vec![0; layout.stack as usize],
        };
        image.store_state(state, layout.data as usize);
        image
    }

    /// Program name recorded in the code segment. Parses the header in
    /// place — only the name bytes themselves are copied out, never the
    /// whole (padded) segment.
    pub fn program_name(&self) -> Result<String, WireError> {
        let Some(hdr) = self.code.get(..2) else {
            return Err(WireError::Truncated("code segment"));
        };
        let len = u16::from_be_bytes([hdr[0], hdr[1]]) as usize;
        if len > MAX_NAME {
            return Err(WireError::BadLength {
                what: "program name",
                len,
            });
        }
        let Some(name) = self.code.get(2..2 + len) else {
            return Err(WireError::BadLength {
                what: "program name",
                len,
            });
        };
        String::from_utf8(name.to_vec()).map_err(|_| WireError::BadLength {
            what: "program name utf8",
            len,
        })
    }

    /// Serialized program state recorded in the data segment. Copies only
    /// the `len` state bytes, not the whole (padded, possibly hundreds of
    /// KiB) segment it sits in.
    pub fn load_state(&self) -> Result<Bytes, WireError> {
        let Some(hdr) = self.data.get(..4) else {
            return Err(WireError::Truncated("data segment"));
        };
        let len = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        if len > MAX_STATE {
            return Err(WireError::BadLength {
                what: "program state",
                len,
            });
        }
        let Some(state) = self.data.get(4..4 + len) else {
            return Err(WireError::BadLength {
                what: "program state",
                len,
            });
        };
        Ok(Bytes::copy_from_slice(state))
    }

    /// (Re-)store program state into the data segment, preserving at least
    /// `min_len` bytes of segment (grows if the state outgrew the segment:
    /// the memory-table side of "definition of memory … if necessary",
    /// §3.1 step 5).
    pub fn store_state(&mut self, state: &[u8], min_len: usize) {
        self.data.clear();
        self.data
            .extend_from_slice(&(state.len() as u32).to_be_bytes());
        self.data.extend_from_slice(state);
        if self.data.len() < min_len {
            self.data.resize(min_len, 0);
        }
    }

    /// Total image size in bytes — what migration step 5 transfers.
    pub fn total_len(&self) -> usize {
        self.code.len() + self.data.len() + self.stack.len()
    }

    /// Exact length of [`Self::to_flat`]'s output, without building it —
    /// sizing a migration offer must not flatten (copy) the image.
    pub fn flat_len(&self) -> usize {
        12 + self.total_len()
    }

    /// Concatenate the segments for a whole-image move-data read
    /// (step 5 of §3.1 uses one data move for "code, data, and stack").
    pub fn to_flat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.total_len());
        out.extend_from_slice(&(self.code.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.code);
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.stack);
        out
    }

    /// Rebuild from [`Self::to_flat`] bytes. Parses the header in place
    /// and copies each segment exactly once, straight out of `bytes` —
    /// the old whole-blob staging copy doubled the install cost of a
    /// 512 KiB image.
    pub fn from_flat(bytes: &[u8]) -> Result<Self, WireError> {
        let Some(hdr) = bytes.get(..12) else {
            return Err(WireError::Truncated("image header"));
        };
        let code_len = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as u64;
        let data_len = u32::from_be_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as u64;
        let stack_len = u32::from_be_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]) as u64;
        let total = code_len + data_len + stack_len;
        if total != bytes.len() as u64 - 12 {
            return Err(WireError::BadLength {
                what: "image segments",
                len: total as usize,
            });
        }
        let code_end = 12 + code_len as usize;
        let data_end = code_end + data_len as usize;
        Ok(ProcessImage {
            code: bytes[12..code_end].to_vec(),
            data: bytes[code_end..data_end].to_vec(),
            stack: bytes[data_end..].to_vec(),
        })
    }

    /// Read `len` bytes at `offset` of the *data segment* — the region
    /// user-level data-area links grant access to (§2.2).
    pub fn read_data(&self, offset: u32, len: u32) -> Option<&[u8]> {
        let start = offset as usize;
        let end = start.checked_add(len as usize)?;
        self.data.get(start..end)
    }

    /// Write into the data segment at `offset`.
    pub fn write_data(&mut self, offset: u32, bytes: &[u8]) -> bool {
        let start = offset as usize;
        let Some(end) = start.checked_add(bytes.len()) else {
            return false;
        };
        let Some(slice) = self.data.get_mut(start..end) else {
            return false;
        };
        slice.copy_from_slice(bytes);
        true
    }
}

/// Convenience: encode an image layout for the memory tables of the
/// resident state.
impl Wire for ImageLayout {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.code);
        buf.put_u32(self.data);
        buf.put_u32(self.stack);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 12 {
            return Err(WireError::Truncated("ImageLayout"));
        }
        Ok(ImageLayout {
            code: buf.get_u32(),
            data: buf.get_u32(),
            stack: buf.get_u32(),
        })
    }

    fn wire_len(&self) -> usize {
        12
    }
}

/// Encode a name + state pair as used by spawn requests.
pub fn encode_spawn_blob(name: &str, state: &[u8]) -> Bytes {
    let mut buf = BytesMut::new();
    wire::put_string(&mut buf, name);
    wire::put_bytes(&mut buf, state);
    buf.freeze()
}

/// Decode a spawn blob.
pub fn decode_spawn_blob(bytes: &Bytes) -> Result<(String, Bytes), WireError> {
    let mut buf = bytes.clone();
    let name = wire::get_string(&mut buf, "spawn.name", MAX_NAME)?;
    let state = wire::get_bytes(&mut buf, "spawn.state", MAX_STATE)?;
    Ok((name, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse() {
        let img = ProcessImage::build("pingpong", b"state!", ImageLayout::default());
        assert_eq!(img.program_name().unwrap(), "pingpong");
        assert_eq!(&img.load_state().unwrap()[..], b"state!");
        assert_eq!(img.code.len(), 8 * 1024);
        assert_eq!(img.data.len(), 4 * 1024);
        assert_eq!(img.stack.len(), 2 * 1024);
        assert_eq!(img.total_len() as u32, ImageLayout::default().total());
    }

    #[test]
    fn state_larger_than_declared_grows_segment() {
        let layout = ImageLayout {
            code: 64,
            data: 8,
            stack: 0,
        };
        let img = ProcessImage::build("p", &[7u8; 100], layout);
        assert_eq!(&img.load_state().unwrap()[..], &[7u8; 100][..]);
        assert!(img.data.len() >= 104);
    }

    #[test]
    fn restore_state_in_place() {
        let mut img = ProcessImage::build("p", b"old", ImageLayout::default());
        img.store_state(b"newer state", img.data.len());
        assert_eq!(&img.load_state().unwrap()[..], b"newer state");
        assert_eq!(img.data.len(), 4 * 1024, "declared size preserved");
    }

    #[test]
    fn flat_roundtrip() {
        let img = ProcessImage::build(
            "prog",
            b"abc",
            ImageLayout {
                code: 100,
                data: 50,
                stack: 25,
            },
        );
        let flat = img.to_flat();
        let back = ProcessImage::from_flat(&flat).unwrap();
        assert_eq!(back, img);
        assert_eq!(flat.len(), 12 + img.total_len());
        assert_eq!(
            img.flat_len(),
            flat.len(),
            "arithmetic flat length matches the built blob"
        );
    }

    #[test]
    fn flat_rejects_bad_lengths() {
        let img = ProcessImage::build(
            "prog",
            b"abc",
            ImageLayout {
                code: 64,
                data: 16,
                stack: 0,
            },
        );
        let mut flat = img.to_flat();
        flat.pop();
        assert!(ProcessImage::from_flat(&flat).is_err());
    }

    #[test]
    fn data_window_access() {
        let mut img = ProcessImage::build(
            "p",
            b"",
            ImageLayout {
                code: 16,
                data: 64,
                stack: 0,
            },
        );
        assert!(img.write_data(10, b"hello"));
        assert_eq!(img.read_data(10, 5).unwrap(), b"hello");
        assert!(img.read_data(60, 10).is_none(), "out of bounds read");
        assert!(!img.write_data(u32::MAX, b"x"), "overflow guarded");
    }

    #[test]
    fn corrupt_code_segment_is_error() {
        let img = ProcessImage {
            code: vec![0xff],
            data: vec![],
            stack: vec![],
        };
        assert!(img.program_name().is_err());
        assert!(img.load_state().is_err());
    }

    #[test]
    fn spawn_blob_roundtrip() {
        let blob = encode_spawn_blob("fs", b"\x01\x02");
        let (name, state) = decode_spawn_blob(&blob).unwrap();
        assert_eq!(name, "fs");
        assert_eq!(&state[..], b"\x01\x02");
    }
}
