//! System protocol payloads.
//!
//! Four wire protocols ride inside [`crate::message::Message`] payloads,
//! distinguished by the header's `msg_type`:
//!
//! * [`KernelOp`] (`tags::KERNEL_OP`) — control operations addressed *to a
//!   process* over a `DELIVERTOKERNEL` link and received by the kernel of
//!   whatever machine the process currently occupies (§2.2). Includes
//!   message #1 of the migration protocol (`MigrateRequest`).
//! * [`MigrateMsg`] (`tags::MIGRATE`) — the kernel-to-kernel migration
//!   protocol of §3.1 (offer/accept/complete/cleanup/done).
//! * [`MoveDataMsg`] (`tags::MOVE_DATA`) — the streamed block-transfer
//!   facility of §2.2/§6: a read or write request followed by a continuous
//!   stream of data packets, each acknowledged, with the sender never
//!   waiting for acknowledgements to send the next packet.
//! * [`LinkMaintMsg`] (`tags::LINK_MAINT`) — link updates after a forward
//!   (§5), non-deliverable notices (§4's alternative scheme / ablation) and
//!   death notices for forwarding-address garbage collection (§4).
//!
//! Every payload has a deterministic encoding; unit tests pin the payload
//! sizes that experiment E2 (administrative cost) reports.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ids::{MachineId, ProcessId};
use crate::wire::{self, Wire, WireError};

/// Why a destination kernel refused a migration offer (§3.2 — autonomy and
/// inter-domain migration: "the destination machine may simply refuse to
/// accept any migrations not fitting its criteria").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// Destination lacks memory or process slots.
    Capacity,
    /// Destination policy (e.g. a suspicious domain) declined.
    Policy,
    /// Destination already hosts a process with this identifier.
    DuplicatePid,
    /// Offer malformed or out of order.
    Protocol,
}

impl RejectReason {
    fn to_u8(self) -> u8 {
        match self {
            RejectReason::Capacity => 0,
            RejectReason::Policy => 1,
            RejectReason::DuplicatePid => 2,
            RejectReason::Protocol => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => RejectReason::Capacity,
            1 => RejectReason::Policy,
            2 => RejectReason::DuplicatePid,
            3 => RejectReason::Protocol,
            _ => {
                return Err(WireError::BadTag {
                    what: "RejectReason",
                    tag: u16::from(v),
                })
            }
        })
    }
}

/// Control operations delivered to a process's kernel (`DELIVERTOKERNEL`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelOp {
    /// Take the process off the run queue.
    Suspend,
    /// Put a suspended process back on the run queue.
    Resume,
    /// Destroy the process and reclaim its state.
    Kill,
    /// Migration protocol message #1: the process manager asks the kernel
    /// currently hosting the process to migrate it to `dest` (§3.1 step 2
    /// is then initiated by that kernel). 6-byte payload.
    MigrateRequest {
        /// Destination processor.
        dest: MachineId,
        /// Policy-defined flags (reserved; carried for the 6-byte size the
        /// paper reports for small control messages).
        flags: u16,
    },
    /// Ask the kernel to report the process's status on the carried reply
    /// link.
    QueryStatus,
}

impl Wire for KernelOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            KernelOp::Suspend => buf.put_u16(1),
            KernelOp::Resume => buf.put_u16(2),
            KernelOp::Kill => buf.put_u16(3),
            KernelOp::MigrateRequest { dest, flags } => {
                buf.put_u16(4);
                dest.encode(buf);
                buf.put_u16(*flags);
            }
            KernelOp::QueryStatus => buf.put_u16(5),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated("KernelOp"));
        }
        let tag = buf.get_u16();
        Ok(match tag {
            1 => KernelOp::Suspend,
            2 => KernelOp::Resume,
            3 => KernelOp::Kill,
            4 => {
                let dest = MachineId::decode(buf)?;
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated("MigrateRequest.flags"));
                }
                KernelOp::MigrateRequest {
                    dest,
                    flags: buf.get_u16(),
                }
            }
            5 => KernelOp::QueryStatus,
            _ => {
                return Err(WireError::BadTag {
                    what: "KernelOp",
                    tag,
                })
            }
        })
    }
}

/// A migration context id, allocated by the source kernel for one migration
/// and echoed in the subsequent protocol messages, keeping them compact.
pub type MigrationCtx = u16;

/// Kernel-to-kernel migration protocol (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrateMsg {
    /// #2 — source asks destination to accept the process; carries the
    /// sizes the destination needs to reserve resources (step 3).
    Offer {
        /// Migration context on the source.
        ctx: MigrationCtx,
        /// The process being moved.
        pid: ProcessId,
        /// Bytes of non-swappable (resident) state — ≈250 in the paper.
        resident_len: u16,
        /// Bytes of swappable state — ≈600, scaling with the link table.
        swappable_len: u16,
        /// Bytes of the memory image (code + data + stack).
        image_len: u32,
    },
    /// #3 — destination accepts; an empty process state has been allocated.
    Accept {
        /// Echoed context.
        ctx: MigrationCtx,
        /// Destination-side slot (context) for the incoming process.
        slot: u16,
        /// Move-data window the destination will use (bytes per packet).
        window: u16,
    },
    /// #3′ — destination refuses (autonomy / inter-domain, §3.2).
    Reject {
        /// Echoed context.
        ctx: MigrationCtx,
        /// Echoed pid, for sanity checking at the source.
        pid: ProcessId,
        /// Why.
        reason: RejectReason,
    },
    /// #7 — destination has pulled all three state moves; source may now
    /// forward pending messages and clean up (steps 6–7).
    TransferComplete {
        /// Echoed context.
        ctx: MigrationCtx,
        /// Total bytes received across the three moves.
        received: u32,
    },
    /// #8 — source has forwarded the pending queue and installed the
    /// forwarding address; destination may restart the process (step 8).
    CleanupDone {
        /// Echoed context.
        ctx: MigrationCtx,
        /// How many queued messages were forwarded (step 6).
        forwarded: u16,
    },
    /// #9 — destination notifies the process manager that migration
    /// finished (or failed).
    Done {
        /// The migrated process.
        pid: ProcessId,
        /// Where it now runs.
        dest: MachineId,
        /// 0 = success; otherwise a [`RejectReason`] code + 1.
        status: u8,
    },
    /// Source aborts an in-flight migration (timeout / crash recovery).
    Abort {
        /// Echoed context.
        ctx: MigrationCtx,
        /// The process whose migration is abandoned.
        pid: ProcessId,
    },
}

impl Wire for MigrateMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MigrateMsg::Offer {
                ctx,
                pid,
                resident_len,
                swappable_len,
                image_len,
            } => {
                buf.put_u8(1);
                buf.put_u16(*ctx);
                pid.encode(buf);
                buf.put_u16(*resident_len);
                buf.put_u16(*swappable_len);
                buf.put_u32(*image_len);
            }
            MigrateMsg::Accept { ctx, slot, window } => {
                buf.put_u8(2);
                buf.put_u16(*ctx);
                buf.put_u16(*slot);
                buf.put_u16(*window);
            }
            MigrateMsg::Reject { ctx, pid, reason } => {
                buf.put_u8(3);
                buf.put_u16(*ctx);
                pid.encode(buf);
                buf.put_u8(reason.to_u8());
            }
            MigrateMsg::TransferComplete { ctx, received } => {
                buf.put_u8(4);
                buf.put_u16(*ctx);
                buf.put_u32(*received);
            }
            MigrateMsg::CleanupDone { ctx, forwarded } => {
                buf.put_u8(5);
                buf.put_u16(*ctx);
                buf.put_u16(*forwarded);
            }
            MigrateMsg::Done { pid, dest, status } => {
                buf.put_u8(6);
                pid.encode(buf);
                dest.encode(buf);
                buf.put_u8(*status);
            }
            MigrateMsg::Abort { ctx, pid } => {
                buf.put_u8(7);
                buf.put_u16(*ctx);
                pid.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("MigrateMsg"));
        }
        let tag = buf.get_u8();
        match tag {
            1 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated("Offer.ctx"));
                }
                let ctx = buf.get_u16();
                let pid = ProcessId::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated("Offer.sizes"));
                }
                Ok(MigrateMsg::Offer {
                    ctx,
                    pid,
                    resident_len: buf.get_u16(),
                    swappable_len: buf.get_u16(),
                    image_len: buf.get_u32(),
                })
            }
            2 => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated("Accept"));
                }
                Ok(MigrateMsg::Accept {
                    ctx: buf.get_u16(),
                    slot: buf.get_u16(),
                    window: buf.get_u16(),
                })
            }
            3 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated("Reject.ctx"));
                }
                let ctx = buf.get_u16();
                let pid = ProcessId::decode(buf)?;
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("Reject.reason"));
                }
                Ok(MigrateMsg::Reject {
                    ctx,
                    pid,
                    reason: RejectReason::from_u8(buf.get_u8())?,
                })
            }
            4 => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated("TransferComplete"));
                }
                Ok(MigrateMsg::TransferComplete {
                    ctx: buf.get_u16(),
                    received: buf.get_u32(),
                })
            }
            5 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated("CleanupDone"));
                }
                Ok(MigrateMsg::CleanupDone {
                    ctx: buf.get_u16(),
                    forwarded: buf.get_u16(),
                })
            }
            6 => {
                let pid = ProcessId::decode(buf)?;
                let dest = MachineId::decode(buf)?;
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated("Done.status"));
                }
                Ok(MigrateMsg::Done {
                    pid,
                    dest,
                    status: buf.get_u8(),
                })
            }
            7 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated("Abort.ctx"));
                }
                let ctx = buf.get_u16();
                let pid = ProcessId::decode(buf)?;
                Ok(MigrateMsg::Abort { ctx, pid })
            }
            _ => Err(WireError::BadTag {
                what: "MigrateMsg",
                tag: u16::from(tag),
            }),
        }
    }
}

/// Which region of a process a move-data operation addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AreaSel {
    /// The window granted by a link carried in the request message
    /// (user-level move-data: file transfers etc., §2.2).
    LinkArea,
    /// Non-swappable process state (migration authority only; step 4).
    Resident,
    /// Swappable process state (step 4).
    Swappable,
    /// Memory image: code + data + stack (step 5).
    Image,
}

impl AreaSel {
    fn to_u8(self) -> u8 {
        match self {
            AreaSel::LinkArea => 0,
            AreaSel::Resident => 1,
            AreaSel::Swappable => 2,
            AreaSel::Image => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => AreaSel::LinkArea,
            1 => AreaSel::Resident,
            2 => AreaSel::Swappable,
            3 => AreaSel::Image,
            _ => {
                return Err(WireError::BadTag {
                    what: "AreaSel",
                    tag: u16::from(v),
                })
            }
        })
    }
}

/// Move-data facility messages (§2.2, §6).
///
/// A transfer is identified by a requester-chosen `op` id, unique per
/// (requester machine, op). Data packets stream continuously; each is
/// acknowledged, but "the sending kernel does not have to wait for the
/// acknowledgement to send the next packet" (§6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MoveDataMsg {
    /// Request to read `len` bytes at `offset` of `target`'s selected area.
    /// For `AreaSel::LinkArea` the authorizing link is carried in the
    /// message's link slots.
    ReadReq {
        /// Requester-chosen operation id.
        op: u16,
        /// Process whose memory is read.
        target: ProcessId,
        /// Which area.
        sel: AreaSel,
        /// Byte offset within the area.
        offset: u32,
        /// Bytes to read (0 = whole area).
        len: u32,
    },
    /// Request to write the subsequent data stream into `target`'s area.
    WriteReq {
        /// Requester-chosen operation id.
        op: u16,
        /// Process whose memory is written.
        target: ProcessId,
        /// Which area.
        sel: AreaSel,
        /// Byte offset within the area.
        offset: u32,
        /// Bytes that will follow in `Data` packets.
        len: u32,
    },
    /// One packet of the stream.
    Data {
        /// Operation id.
        op: u16,
        /// Packet sequence number within the operation, from 0.
        seq: u32,
        /// Payload bytes.
        bytes: Bytes,
    },
    /// Acknowledgement of one data packet.
    Ack {
        /// Operation id.
        op: u16,
        /// Acknowledged sequence number.
        seq: u32,
    },
    /// End of operation.
    Done {
        /// Operation id.
        op: u16,
        /// 0 = success.
        status: u8,
        /// Total bytes moved.
        total: u32,
    },
    /// The serving side aborted (bad window, process vanished, …).
    Abort {
        /// Operation id.
        op: u16,
        /// Diagnostic code.
        reason: u8,
    },
}

impl Wire for MoveDataMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MoveDataMsg::ReadReq {
                op,
                target,
                sel,
                offset,
                len,
            } => {
                buf.put_u8(1);
                buf.put_u16(*op);
                target.encode(buf);
                buf.put_u8(sel.to_u8());
                buf.put_u32(*offset);
                buf.put_u32(*len);
            }
            MoveDataMsg::WriteReq {
                op,
                target,
                sel,
                offset,
                len,
            } => {
                buf.put_u8(2);
                buf.put_u16(*op);
                target.encode(buf);
                buf.put_u8(sel.to_u8());
                buf.put_u32(*offset);
                buf.put_u32(*len);
            }
            MoveDataMsg::Data { op, seq, bytes } => {
                buf.put_u8(3);
                buf.put_u16(*op);
                buf.put_u32(*seq);
                wire::put_bytes(buf, bytes);
            }
            MoveDataMsg::Ack { op, seq } => {
                buf.put_u8(4);
                buf.put_u16(*op);
                buf.put_u32(*seq);
            }
            MoveDataMsg::Done { op, status, total } => {
                buf.put_u8(5);
                buf.put_u16(*op);
                buf.put_u8(*status);
                buf.put_u32(*total);
            }
            MoveDataMsg::Abort { op, reason } => {
                buf.put_u8(6);
                buf.put_u16(*op);
                buf.put_u8(*reason);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("MoveDataMsg"));
        }
        let tag = buf.get_u8();
        match tag {
            1 | 2 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated("MoveDataMsg.op"));
                }
                let op = buf.get_u16();
                let target = ProcessId::decode(buf)?;
                if buf.remaining() < 9 {
                    return Err(WireError::Truncated("MoveDataMsg.req"));
                }
                let sel = AreaSel::from_u8(buf.get_u8())?;
                let offset = buf.get_u32();
                let len = buf.get_u32();
                Ok(if tag == 1 {
                    MoveDataMsg::ReadReq {
                        op,
                        target,
                        sel,
                        offset,
                        len,
                    }
                } else {
                    MoveDataMsg::WriteReq {
                        op,
                        target,
                        sel,
                        offset,
                        len,
                    }
                })
            }
            3 => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated("Data"));
                }
                let op = buf.get_u16();
                let seq = buf.get_u32();
                let bytes = wire::get_bytes(buf, "Data.bytes", crate::message::MAX_PAYLOAD)?;
                Ok(MoveDataMsg::Data { op, seq, bytes })
            }
            4 => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated("Ack"));
                }
                Ok(MoveDataMsg::Ack {
                    op: buf.get_u16(),
                    seq: buf.get_u32(),
                })
            }
            5 => {
                if buf.remaining() < 7 {
                    return Err(WireError::Truncated("Done"));
                }
                Ok(MoveDataMsg::Done {
                    op: buf.get_u16(),
                    status: buf.get_u8(),
                    total: buf.get_u32(),
                })
            }
            6 => {
                if buf.remaining() < 3 {
                    return Err(WireError::Truncated("Abort"));
                }
                Ok(MoveDataMsg::Abort {
                    op: buf.get_u16(),
                    reason: buf.get_u8(),
                })
            }
            _ => Err(WireError::BadTag {
                what: "MoveDataMsg",
                tag: u16::from(tag),
            }),
        }
    }
}

/// Link maintenance: forwarding by-products (§4–5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkMaintMsg {
    /// Sent by a forwarding kernel to the kernel of the *sender* of a
    /// forwarded message (§5, Figure 5-1): "all links in the sending
    /// process's link table that point to the migrated process are then
    /// updated to point to the new location."
    LinkUpdate {
        /// The process whose links should be patched.
        sender: ProcessId,
        /// The process that migrated.
        migrated: ProcessId,
        /// Its new location.
        new_machine: MachineId,
    },
    /// Returned to the sender's kernel when no process and no forwarding
    /// address exists for the destination (§4's alternative scheme; in
    /// forwarding mode it signals a genuinely dead process).
    NonDeliverable {
        /// The process the message was for.
        dest: ProcessId,
        /// Message type of the undeliverable message.
        msg_type: u16,
        /// Diagnostic code (0 = no such process, 1 = forwarding disabled).
        reason: u8,
    },
    /// Propagated backwards along a migration path when a process dies so
    /// forwarding addresses can be garbage-collected (§4: "pointers
    /// backwards along the path of migration").
    DeathNotice {
        /// The process that terminated.
        pid: ProcessId,
    },
    /// Periodic kernel-to-kernel liveness probe over DELIVERTOKERNEL,
    /// consumed by the receiving kernel's failure detector. Carries a
    /// monotonic beat number so missed beats are countable end-to-end.
    Heartbeat {
        /// The machine whose kernel emitted the beat.
        from: MachineId,
        /// Beat number, monotonically increasing per sender.
        seq: u64,
    },
}

impl Wire for LinkMaintMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LinkMaintMsg::LinkUpdate {
                sender,
                migrated,
                new_machine,
            } => {
                buf.put_u8(1);
                sender.encode(buf);
                migrated.encode(buf);
                new_machine.encode(buf);
            }
            LinkMaintMsg::NonDeliverable {
                dest,
                msg_type,
                reason,
            } => {
                buf.put_u8(2);
                dest.encode(buf);
                buf.put_u16(*msg_type);
                buf.put_u8(*reason);
            }
            LinkMaintMsg::DeathNotice { pid } => {
                buf.put_u8(3);
                pid.encode(buf);
            }
            LinkMaintMsg::Heartbeat { from, seq } => {
                buf.put_u8(4);
                from.encode(buf);
                buf.put_u64(*seq);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("LinkMaintMsg"));
        }
        let tag = buf.get_u8();
        match tag {
            1 => {
                let sender = ProcessId::decode(buf)?;
                let migrated = ProcessId::decode(buf)?;
                let new_machine = MachineId::decode(buf)?;
                Ok(LinkMaintMsg::LinkUpdate {
                    sender,
                    migrated,
                    new_machine,
                })
            }
            2 => {
                let dest = ProcessId::decode(buf)?;
                if buf.remaining() < 3 {
                    return Err(WireError::Truncated("NonDeliverable"));
                }
                Ok(LinkMaintMsg::NonDeliverable {
                    dest,
                    msg_type: buf.get_u16(),
                    reason: buf.get_u8(),
                })
            }
            3 => Ok(LinkMaintMsg::DeathNotice {
                pid: ProcessId::decode(buf)?,
            }),
            4 => {
                let from = MachineId::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(WireError::Truncated("Heartbeat"));
                }
                Ok(LinkMaintMsg::Heartbeat {
                    from,
                    seq: buf.get_u64(),
                })
            }
            _ => Err(WireError::BadTag {
                what: "LinkMaintMsg",
                tag: u16::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(1),
            local_uid: u,
        }
    }

    #[test]
    fn kernel_op_roundtrips() {
        for op in [
            KernelOp::Suspend,
            KernelOp::Resume,
            KernelOp::Kill,
            KernelOp::MigrateRequest {
                dest: MachineId(7),
                flags: 0,
            },
            KernelOp::QueryStatus,
        ] {
            assert_eq!(roundtrip(&op).unwrap(), op);
        }
    }

    #[test]
    fn migrate_request_is_six_bytes() {
        // §6: administrative messages are "in the 6-12 byte range";
        // message #1 is exactly 6 bytes here.
        let op = KernelOp::MigrateRequest {
            dest: MachineId(3),
            flags: 0,
        };
        assert_eq!(op.wire_len(), 6);
    }

    #[test]
    fn migrate_msg_roundtrips() {
        let msgs = [
            MigrateMsg::Offer {
                ctx: 9,
                pid: pid(4),
                resident_len: 250,
                swappable_len: 600,
                image_len: 65536,
            },
            MigrateMsg::Accept {
                ctx: 9,
                slot: 3,
                window: 1024,
            },
            MigrateMsg::Reject {
                ctx: 9,
                pid: pid(4),
                reason: RejectReason::Policy,
            },
            MigrateMsg::TransferComplete {
                ctx: 9,
                received: 66386,
            },
            MigrateMsg::CleanupDone {
                ctx: 9,
                forwarded: 12,
            },
            MigrateMsg::Done {
                pid: pid(4),
                dest: MachineId(2),
                status: 0,
            },
            MigrateMsg::Abort {
                ctx: 9,
                pid: pid(4),
            },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn admin_payload_sizes() {
        // Pin the administrative payload sizes that experiment E2 reports.
        // Most land in the paper's 6-12 byte range; Offer is 17 bytes
        // because we carry a full 32-bit image size (the Z8000 original
        // used 16-bit quantities) — EXPERIMENTS.md discusses the delta.
        assert_eq!(
            MigrateMsg::Offer {
                ctx: 0,
                pid: pid(1),
                resident_len: 0,
                swappable_len: 0,
                image_len: 0
            }
            .wire_len(),
            17
        );
        assert_eq!(
            MigrateMsg::Accept {
                ctx: 0,
                slot: 0,
                window: 0
            }
            .wire_len(),
            7
        );
        assert_eq!(
            MigrateMsg::Reject {
                ctx: 0,
                pid: pid(1),
                reason: RejectReason::Capacity
            }
            .wire_len(),
            10
        );
        assert_eq!(
            MigrateMsg::TransferComplete {
                ctx: 0,
                received: 0
            }
            .wire_len(),
            7
        );
        assert_eq!(
            MigrateMsg::CleanupDone {
                ctx: 0,
                forwarded: 0
            }
            .wire_len(),
            5
        );
        assert_eq!(
            MigrateMsg::Done {
                pid: pid(1),
                dest: MachineId(0),
                status: 0
            }
            .wire_len(),
            10
        );
    }

    #[test]
    fn move_data_roundtrips() {
        let msgs = [
            MoveDataMsg::ReadReq {
                op: 1,
                target: pid(2),
                sel: AreaSel::Image,
                offset: 0,
                len: 0,
            },
            MoveDataMsg::WriteReq {
                op: 1,
                target: pid(2),
                sel: AreaSel::LinkArea,
                offset: 64,
                len: 128,
            },
            MoveDataMsg::Data {
                op: 1,
                seq: 5,
                bytes: Bytes::from_static(b"abc"),
            },
            MoveDataMsg::Ack { op: 1, seq: 5 },
            MoveDataMsg::Done {
                op: 1,
                status: 0,
                total: 4096,
            },
            MoveDataMsg::Abort { op: 1, reason: 2 },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn link_maint_roundtrips() {
        let msgs = [
            LinkMaintMsg::LinkUpdate {
                sender: pid(1),
                migrated: pid(2),
                new_machine: MachineId(3),
            },
            LinkMaintMsg::NonDeliverable {
                dest: pid(2),
                msg_type: 0x1001,
                reason: 0,
            },
            LinkMaintMsg::DeathNotice { pid: pid(2) },
            LinkMaintMsg::Heartbeat {
                from: MachineId(4),
                seq: 17,
            },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut b = Bytes::from_static(&[0xee, 0, 0]);
        assert!(MigrateMsg::decode(&mut b).is_err());
        let mut b = Bytes::from_static(&[0xee, 0, 0]);
        assert!(MoveDataMsg::decode(&mut b).is_err());
        let mut b = Bytes::from_static(&[0xee, 0, 0]);
        assert!(LinkMaintMsg::decode(&mut b).is_err());
        let mut b = Bytes::from_static(&[0xee, 0xee, 0]);
        assert!(KernelOp::decode(&mut b).is_err());
    }

    #[test]
    fn reject_reason_codes_roundtrip() {
        for r in [
            RejectReason::Capacity,
            RejectReason::Policy,
            RejectReason::DuplicatePid,
            RejectReason::Protocol,
        ] {
            assert_eq!(RejectReason::from_u8(r.to_u8()).unwrap(), r);
        }
        assert!(RejectReason::from_u8(99).is_err());
    }
}
