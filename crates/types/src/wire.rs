//! Byte-exact wire codec.
//!
//! DEMOS/MP's cost evaluation (§6) is denominated in messages and bytes, so
//! the reproduction encodes everything that crosses the simulated network
//! through this small hand-rolled codec rather than an opaque serializer.
//! Every encoding is deterministic and its length is reported by
//! [`Wire::wire_len`], which lets the benchmark harness account for each
//! byte the paper counts (8-byte forwarding addresses, 6–12-byte
//! administrative messages, 250/600-byte state records, …).
//!
//! All integers are big-endian. Variable-length fields carry explicit
//! length prefixes. Decoding never panics: malformed input yields
//! [`WireError`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use core::fmt;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the named field could be read.
    Truncated(&'static str),
    /// A tag/discriminant byte had no corresponding variant.
    BadTag {
        /// Type being decoded.
        what: &'static str,
        /// Offending tag value.
        tag: u16,
    },
    /// A length prefix exceeded the remaining buffer or a sanity bound.
    BadLength {
        /// Type being decoded.
        what: &'static str,
        /// Claimed length.
        len: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated input while decoding {what}"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag:#x} for {what}"),
            WireError::BadLength { what, len } => {
                write!(f, "implausible length {len} while decoding {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Types with a deterministic binary encoding.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decode a value from the front of `buf`, consuming exactly the bytes
    /// of one encoded value.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Length in bytes that [`Wire::encode`] will append.
    ///
    /// The default implementation encodes into a scratch buffer; fixed-size
    /// types override it with a constant.
    fn wire_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Encode into a fresh, frozen buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode a value that must occupy the *entire* buffer.
    fn from_bytes(bytes: &Bytes) -> Result<Self, WireError> {
        let mut b = bytes.clone();
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(WireError::BadLength {
                what: "trailing bytes",
                len: b.remaining(),
            });
        }
        Ok(v)
    }
}

/// Encode then decode a value — test helper used across the workspace.
pub fn roundtrip<T: Wire>(v: &T) -> Result<T, WireError> {
    let bytes = v.to_bytes();
    T::from_bytes(&bytes)
}

/// Read a length-prefixed (`u32`) byte string bounded by `max`.
pub fn get_bytes(buf: &mut Bytes, what: &'static str, max: usize) -> Result<Bytes, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated(what));
    }
    let len = usize::try_from(buf.get_u32()).map_err(|_| WireError::BadLength {
        what,
        len: usize::MAX,
    })?;
    if len > max || len > buf.remaining() {
        return Err(WireError::BadLength { what, len });
    }
    Ok(buf.split_to(len))
}

/// Write a length-prefixed (`u32`) byte string. Inputs longer than the
/// prefix can express are truncated (and counted in [`codec_stats`])
/// rather than aborting: encode sits on every kernel handler path, and a
/// handler must degrade, not die. Honest senders never hit the clamp —
/// every protocol payload is bounded far below 4 GiB.
pub fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    let max = usize::try_from(u32::MAX).unwrap_or(usize::MAX);
    let bytes = if bytes.len() > max {
        codec_stats::note_clamp();
        &bytes[..max]
    } else {
        bytes
    };
    let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
    buf.put_u32(len);
    buf.put_slice(bytes);
}

/// Encode-side degradation counters. A nonzero value means some encode
/// clamped an out-of-invariant field instead of panicking — always a bug
/// upstream, but one that drops data instead of a kernel.
pub mod codec_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CLAMPED: AtomicU64 = AtomicU64::new(0);

    /// Record one clamped encode.
    pub(crate) fn note_clamp() {
        CLAMPED.fetch_add(1, Ordering::Relaxed);
    }

    /// Total clamped encodes since process start.
    pub fn clamped() -> u64 {
        CLAMPED.load(Ordering::Relaxed)
    }
}

/// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8 is *not*
/// permitted; invalid bytes are an error).
pub fn get_string(buf: &mut Bytes, what: &'static str, max: usize) -> Result<String, WireError> {
    let bytes = get_bytes(buf, what, max)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadLength {
        what,
        len: bytes.len(),
    })
}

/// Write a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated("u8"));
        }
        Ok(buf.get_u8())
    }
    fn wire_len(&self) -> usize {
        1
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated("u16"));
        }
        Ok(buf.get_u16())
    }
    fn wire_len(&self) -> usize {
        2
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 4 {
            return Err(WireError::Truncated("u32"));
        }
        Ok(buf.get_u32())
    }
    fn wire_len(&self) -> usize {
        4
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated("u64"));
        }
        Ok(buf.get_u64())
    }
    fn wire_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(roundtrip(&0xabu8).unwrap(), 0xab);
        assert_eq!(roundtrip(&0xabcdu16).unwrap(), 0xabcd);
        assert_eq!(roundtrip(&0xdead_beefu32).unwrap(), 0xdead_beef);
        assert_eq!(
            roundtrip(&0x0123_4567_89ab_cdefu64).unwrap(),
            0x0123_4567_89ab_cdef
        );
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut buf = BytesMut::new();
        1u16.encode(&mut buf);
        0u8.encode(&mut buf);
        let bytes = buf.freeze();
        assert!(u16::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bytes_helpers_roundtrip() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"hello");
        put_string(&mut buf, "world");
        let mut b = buf.freeze();
        assert_eq!(&get_bytes(&mut b, "t", 1024).unwrap()[..], b"hello");
        assert_eq!(get_string(&mut b, "t", 1024).unwrap(), "world");
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_helper_bounds() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0u8; 64]);
        let mut b = buf.freeze();
        assert!(matches!(
            get_bytes(&mut b, "t", 32),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn bytes_helper_truncation() {
        // Length prefix claims more data than present.
        let mut buf = BytesMut::new();
        buf.put_u32(100);
        buf.put_slice(&[1, 2, 3]);
        let mut b = buf.freeze();
        assert!(get_bytes(&mut b, "t", 1024).is_err());
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert!(get_string(&mut b, "t", 16).is_err());
    }
}
