//! Core types for the DEMOS/MP reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`ids`] — machine identifiers, system-wide unique process identifiers
//!   and the two-part *process address* of Figure 2-1 of the paper
//!   (`last known machine` + `unique process id`).
//! * [`time`] — virtual time used by the discrete-event substrate.
//! * [`wire`] — a small, byte-exact, hand-rolled codec. DEMOS/MP's
//!   evaluation counts message *bytes*, so every type that crosses the
//!   simulated network has a deterministic encoding whose length we can
//!   report honestly (e.g. a forwarding address is exactly 8 bytes, §4).
//! * [`link`] — links: protected global process addresses with the
//!   `DELIVERTOKERNEL` attribute and optional data-area windows (§2.1–2.2).
//! * [`message`] — message headers and messages, including carried links.
//! * [`proto`] — payloads of kernel control, migration, move-data and
//!   link-maintenance protocol messages (§3–5).
//! * [`corr`] — correlation ids for causal tracing; carried alongside
//!   messages and frames, never inside the wire encoding.
//! * [`error`] — error types shared across the workspace.
//!
//! Nothing in this crate allocates per-message beyond the payload buffer
//! itself; headers encode into caller-provided [`bytes::BytesMut`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corr;
pub mod error;
pub mod ids;
pub mod link;
pub mod message;
pub mod proto;
pub mod time;
pub mod wire;

pub use corr::CorrId;
pub use error::{DemosError, Result};
pub use ids::{MachineId, ProcessAddress, ProcessId, KERNEL_LOCAL_UID};
pub use link::{DataArea, Link, LinkAttrs, LinkIdx};
pub use message::{tags, Message, MsgFlags, MsgHeader};
pub use time::{Duration, Time};
pub use wire::{Wire, WireError};
