//! Workspace-wide error type.

use core::fmt;

use crate::ids::{MachineId, ProcessId};
use crate::link::LinkIdx;
use crate::wire::WireError;

/// Convenient alias used across the workspace.
pub type Result<T> = core::result::Result<T, DemosError>;

/// Errors surfaced by kernel calls and the migration machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemosError {
    /// The named machine does not exist in the cluster.
    NoSuchMachine(MachineId),
    /// No process with this identifier exists at the expected machine.
    NoSuchProcess(ProcessId),
    /// A link index was not present in the caller's link table.
    BadLink(LinkIdx),
    /// Operation required an attribute the link does not carry.
    LinkAccess {
        /// The offending link.
        link: LinkIdx,
        /// Human-readable requirement, e.g. `"DATA_READ"`.
        need: &'static str,
    },
    /// A one-shot reply link was used a second time.
    ReplyLinkConsumed(LinkIdx),
    /// Move-data range fell outside the granted window.
    AreaOutOfBounds,
    /// The process is already migrating and cannot start another migration.
    AlreadyMigrating(ProcessId),
    /// Destination refused the migration offer.
    MigrationRejected(ProcessId),
    /// Migration was aborted (crash, timeout).
    MigrationAborted(ProcessId),
    /// The destination machine equals the source; nothing to do.
    MigrationToSelf(ProcessId),
    /// Kernels cannot be migrated, killed or suspended.
    KernelImmovable(MachineId),
    /// A message was undeliverable and non-delivery mode returned it.
    NonDeliverable(ProcessId),
    /// Message or payload exceeded protocol limits.
    TooLarge {
        /// What exceeded its bound.
        what: &'static str,
        /// Requested size.
        len: usize,
        /// Maximum permitted.
        max: usize,
    },
    /// Per-machine capacity (process slots or memory) exhausted.
    Capacity(MachineId),
    /// A wire decode failed.
    Wire(WireError),
    /// The registry knows no program by this name.
    UnknownProgram(String),
    /// Internal invariant violation (should never happen; kept as an error
    /// instead of a panic so the simulator can surface it in traces).
    Internal(&'static str),
}

impl fmt::Display for DemosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemosError::NoSuchMachine(m) => write!(f, "no such machine {m}"),
            DemosError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            DemosError::BadLink(l) => write!(f, "invalid link index {l}"),
            DemosError::LinkAccess { link, need } => {
                write!(f, "link {link} lacks required attribute {need}")
            }
            DemosError::ReplyLinkConsumed(l) => write!(f, "reply link {l} already used"),
            DemosError::AreaOutOfBounds => write!(f, "move-data range outside granted window"),
            DemosError::AlreadyMigrating(p) => write!(f, "process {p} is already migrating"),
            DemosError::MigrationRejected(p) => {
                write!(f, "migration of {p} rejected by destination")
            }
            DemosError::MigrationAborted(p) => write!(f, "migration of {p} aborted"),
            DemosError::MigrationToSelf(p) => {
                write!(f, "process {p} is already on the target machine")
            }
            DemosError::KernelImmovable(m) => write!(f, "kernel of {m} cannot be manipulated"),
            DemosError::NonDeliverable(p) => write!(f, "message to {p} was not deliverable"),
            DemosError::TooLarge { what, len, max } => {
                write!(f, "{what} too large: {len} > max {max}")
            }
            DemosError::Capacity(m) => write!(f, "machine {m} out of capacity"),
            DemosError::Wire(e) => write!(f, "wire error: {e}"),
            DemosError::UnknownProgram(name) => write!(f, "unknown program {name:?}"),
            DemosError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for DemosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DemosError::Wire(e) => Some(e),
            // Exhaustive so a future wrapping variant must opt in here.
            DemosError::NoSuchMachine(_)
            | DemosError::NoSuchProcess(_)
            | DemosError::BadLink(_)
            | DemosError::LinkAccess { .. }
            | DemosError::ReplyLinkConsumed(_)
            | DemosError::AreaOutOfBounds
            | DemosError::AlreadyMigrating(_)
            | DemosError::MigrationRejected(_)
            | DemosError::MigrationAborted(_)
            | DemosError::MigrationToSelf(_)
            | DemosError::KernelImmovable(_)
            | DemosError::NonDeliverable(_)
            | DemosError::TooLarge { .. }
            | DemosError::Capacity(_)
            | DemosError::UnknownProgram(_)
            | DemosError::Internal(_) => None,
        }
    }
}

impl From<WireError> for DemosError {
    fn from(e: WireError) -> Self {
        DemosError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DemosError::NoSuchProcess(ProcessId {
            creating_machine: MachineId(1),
            local_uid: 3,
        });
        assert!(format!("{e}").contains("p1.3"));
        let e = DemosError::TooLarge {
            what: "payload",
            len: 10,
            max: 5,
        };
        assert!(format!("{e}").contains("payload"));
    }

    #[test]
    fn wire_error_converts() {
        let e: DemosError = WireError::Truncated("x").into();
        assert!(matches!(e, DemosError::Wire(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
