//! Links — DEMOS/MP's capability-like message paths (paper §2.1–2.2, §2.4).
//!
//! A link is "essentially a protected global process address accessed via a
//! local name space". Links are created only by the process they point to,
//! may be duplicated and passed to other processes inside messages, and are
//! context-independent: wherever a link travels, it still addresses the
//! same process.
//!
//! Two attributes matter for migration:
//!
//! * [`LinkAttrs::DELIVER_TO_KERNEL`] — a message sent over such a link
//!   follows the normal routing *to the process* (including forwarding
//!   addresses) but is received by the **kernel** of the machine where the
//!   process resides. This is how control operations follow a process
//!   through migration (§2.2).
//! * data-area access ([`LinkAttrs::DATA_READ`] / [`LinkAttrs::DATA_WRITE`]
//!   plus a [`DataArea`] window) — grants the holder the right to move
//!   data directly to/from part of the creating process's address space
//!   via the kernel move-data facility (§2.2).

use core::fmt;

use bytes::{Buf, BufMut};

use crate::ids::{MachineId, ProcessAddress, ProcessId};
use crate::wire::{Wire, WireError};

/// Index of a link in a process's link table — the *local name space*
/// through which a process refers to its links (akin to a file descriptor).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkIdx(pub u32);

impl fmt::Debug for LinkIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Link attribute bits.
///
/// Hand-rolled bit set (no external bitflags dependency); unknown bits are
/// preserved on decode so future attributes remain forward-compatible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkAttrs(pub u16);

impl LinkAttrs {
    /// No attributes: a plain message path.
    pub const NONE: LinkAttrs = LinkAttrs(0);
    /// Message is received by the kernel of the target process's machine.
    pub const DELIVER_TO_KERNEL: LinkAttrs = LinkAttrs(1 << 0);
    /// Holder may read from the link's data area.
    pub const DATA_READ: LinkAttrs = LinkAttrs(1 << 1);
    /// Holder may write to the link's data area.
    pub const DATA_WRITE: LinkAttrs = LinkAttrs(1 << 2);
    /// One-shot reply link: consumed by its first send (§2.4 — "reply links
    /// … are used only once to respond to requests").
    pub const REPLY: LinkAttrs = LinkAttrs(1 << 3);
    /// A data-area window is present in the encoding.
    pub const HAS_AREA: LinkAttrs = LinkAttrs(1 << 4);

    /// Union of two attribute sets.
    pub const fn union(self, other: LinkAttrs) -> LinkAttrs {
        LinkAttrs(self.0 | other.0)
    }

    /// Whether every bit of `other` is set in `self`.
    pub const fn contains(self, other: LinkAttrs) -> bool {
        (self.0 & other.0) == other.0
    }

    /// Remove the bits of `other`.
    pub const fn without(self, other: LinkAttrs) -> LinkAttrs {
        LinkAttrs(self.0 & !other.0)
    }
}

impl core::ops::BitOr for LinkAttrs {
    type Output = LinkAttrs;
    fn bitor(self, rhs: LinkAttrs) -> LinkAttrs {
        self.union(rhs)
    }
}

impl fmt::Debug for LinkAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(LinkAttrs::DELIVER_TO_KERNEL) {
            parts.push("DTK");
        }
        if self.contains(LinkAttrs::DATA_READ) {
            parts.push("RD");
        }
        if self.contains(LinkAttrs::DATA_WRITE) {
            parts.push("WR");
        }
        if self.contains(LinkAttrs::REPLY) {
            parts.push("REPLY");
        }
        if self.contains(LinkAttrs::HAS_AREA) {
            parts.push("AREA");
        }
        if parts.is_empty() {
            write!(f, "NONE")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// A window into the creating process's address space, granted via a link.
///
/// Offsets are into the process's *data segment*; the kernel validates all
/// move-data operations against this window.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DataArea {
    /// Byte offset into the creating process's data segment.
    pub offset: u32,
    /// Window length in bytes.
    pub len: u32,
}

impl DataArea {
    /// Whether `[off, off+len)` lies entirely inside this window.
    pub fn contains_range(&self, off: u32, len: u32) -> bool {
        let end = off.checked_add(len);
        matches!(end, Some(end) if off >= self.offset && end <= self.offset.saturating_add(self.len))
    }
}

/// A link: the message process address it points at, plus attributes and an
/// optional data-area window.
///
/// Fixed 18-byte wire encoding (8-byte address, 2-byte attributes, 8-byte
/// area), so the swappable-state size scales linearly with the link table —
/// the dependence §6 calls out ("about 600 bytes, depending on the size of
/// the link table").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Link {
    /// Where messages over this link are delivered. `addr.pid` is
    /// immutable; `addr.last_known_machine` is a hint kept fresh by the
    /// link-update protocol (§5).
    pub addr: ProcessAddress,
    /// Attribute bits.
    pub attrs: LinkAttrs,
    /// Data-area window, present iff `attrs` has [`LinkAttrs::HAS_AREA`].
    pub area: Option<DataArea>,
}

impl Link {
    /// Encoded size in bytes (8 + 2 + 4 + 4), fixed.
    pub const WIRE_LEN: usize = 18;

    /// A plain link to `addr`.
    pub const fn to(addr: ProcessAddress) -> Link {
        Link {
            addr,
            attrs: LinkAttrs::NONE,
            area: None,
        }
    }

    /// A link straight to machine `m`'s kernel.
    pub const fn to_kernel(m: MachineId) -> Link {
        Link {
            addr: ProcessAddress::kernel_of(m),
            attrs: LinkAttrs::NONE,
            area: None,
        }
    }

    /// A `DELIVERTOKERNEL` link to process `addr`: routes like a normal
    /// link to the process but is received by the kernel where the process
    /// lives (§2.2).
    pub const fn deliver_to_kernel(addr: ProcessAddress) -> Link {
        Link {
            addr,
            attrs: LinkAttrs::DELIVER_TO_KERNEL,
            area: None,
        }
    }

    /// Attach a data-area window with the given access bits.
    pub fn with_area(mut self, area: DataArea, access: LinkAttrs) -> Link {
        self.area = Some(area);
        self.attrs = self.attrs.union(access).union(LinkAttrs::HAS_AREA);
        self
    }

    /// Mark as a one-shot reply link.
    pub fn reply(mut self) -> Link {
        self.attrs = self.attrs.union(LinkAttrs::REPLY);
        self
    }

    /// The process this link addresses (immutable component).
    pub const fn target(&self) -> ProcessId {
        self.addr.pid
    }

    /// Whether this is a `DELIVERTOKERNEL` link.
    pub fn is_dtk(&self) -> bool {
        self.attrs.contains(LinkAttrs::DELIVER_TO_KERNEL)
    }

    /// Whether this is a one-shot reply link.
    pub fn is_reply(&self) -> bool {
        self.attrs.contains(LinkAttrs::REPLY)
    }

    /// Update the location hint (link update, §5).
    pub fn rehome(&mut self, machine: MachineId) {
        self.addr = self.addr.rehomed(machine);
    }
}

impl Wire for Link {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.addr.encode(buf);
        let mut attrs = self.attrs;
        if self.area.is_some() {
            attrs = attrs.union(LinkAttrs::HAS_AREA);
        } else {
            attrs = attrs.without(LinkAttrs::HAS_AREA);
        }
        buf.put_u16(attrs.0);
        let area = self.area.unwrap_or(DataArea { offset: 0, len: 0 });
        buf.put_u32(area.offset);
        buf.put_u32(area.len);
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, WireError> {
        let addr = ProcessAddress::decode(buf)?;
        if buf.remaining() < 10 {
            return Err(WireError::Truncated("Link"));
        }
        let attrs = LinkAttrs(buf.get_u16());
        let offset = buf.get_u32();
        let len = buf.get_u32();
        let area = attrs
            .contains(LinkAttrs::HAS_AREA)
            .then_some(DataArea { offset, len });
        Ok(Link { addr, attrs, area })
    }

    fn wire_len(&self) -> usize {
        Self::WIRE_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::wire::roundtrip;

    fn addr() -> ProcessAddress {
        ProcessId {
            creating_machine: MachineId(1),
            local_uid: 7,
        }
        .at(MachineId(2))
    }

    #[test]
    fn attrs_ops() {
        let a = LinkAttrs::DATA_READ | LinkAttrs::DATA_WRITE;
        assert!(a.contains(LinkAttrs::DATA_READ));
        assert!(!a.contains(LinkAttrs::REPLY));
        assert!(!a
            .without(LinkAttrs::DATA_READ)
            .contains(LinkAttrs::DATA_READ));
        assert_eq!(format!("{:?}", a), "RD|WR");
        assert_eq!(format!("{:?}", LinkAttrs::NONE), "NONE");
    }

    #[test]
    fn plain_link_roundtrip() {
        let l = Link::to(addr());
        assert_eq!(l.wire_len(), Link::WIRE_LEN);
        assert_eq!(roundtrip(&l).unwrap(), l);
        assert!(!l.is_dtk());
    }

    #[test]
    fn dtk_link_roundtrip() {
        let l = Link::deliver_to_kernel(addr());
        assert!(l.is_dtk());
        assert_eq!(roundtrip(&l).unwrap(), l);
    }

    #[test]
    fn area_link_roundtrip() {
        let l = Link::to(addr()).with_area(
            DataArea {
                offset: 16,
                len: 4096,
            },
            LinkAttrs::DATA_READ | LinkAttrs::DATA_WRITE,
        );
        let back = roundtrip(&l).unwrap();
        assert_eq!(
            back.area,
            Some(DataArea {
                offset: 16,
                len: 4096
            })
        );
        assert!(back.attrs.contains(LinkAttrs::DATA_READ));
        assert!(back.attrs.contains(LinkAttrs::DATA_WRITE));
    }

    #[test]
    fn reply_link() {
        let l = Link::to(addr()).reply();
        assert!(l.is_reply());
        assert_eq!(roundtrip(&l).unwrap(), l);
    }

    #[test]
    fn rehome_keeps_pid() {
        let mut l = Link::to(addr());
        let pid = l.target();
        l.rehome(MachineId(9));
        assert_eq!(
            l.target(),
            pid,
            "links are context-independent: pid never changes"
        );
        assert_eq!(l.addr.last_known_machine, MachineId(9));
    }

    #[test]
    fn data_area_bounds() {
        let a = DataArea {
            offset: 100,
            len: 50,
        };
        assert!(a.contains_range(100, 50));
        assert!(a.contains_range(120, 10));
        assert!(!a.contains_range(99, 2));
        assert!(!a.contains_range(140, 20));
        assert!(!a.contains_range(u32::MAX, 2), "overflow must not wrap");
    }

    #[test]
    fn kernel_link() {
        let l = Link::to_kernel(MachineId(4));
        assert!(l.target().is_kernel());
        assert_eq!(l.addr.last_known_machine, MachineId(4));
    }
}
