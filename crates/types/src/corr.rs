//! Correlation identifiers for causal message tracing.
//!
//! Every message entering a kernel's delivery system is stamped with a
//! cluster-unique [`CorrId`] at submit time. The id travels *alongside*
//! the message — in the in-memory [`crate::Message`] and in the
//! transport frame metadata — never inside the byte-exact wire
//! encoding, so enabling tracing cannot perturb wire sizes, replay
//! fingerprints, or any of the paper's byte counts. Forwarding hops
//! (§4), pending-queue resubmission (§3.1 step 6), retransmissions and
//! the §5 link-update by-product all preserve the originating id, which
//! is what lets the observability layer reassemble one message's whole
//! journey from the flat event trace.

use core::fmt;

/// A cluster-unique correlation id: the originating machine in the top
/// 16 bits, a per-kernel counter below.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CorrId(pub u64);

impl CorrId {
    /// "Not yet assigned" — messages are built with this and stamped by
    /// the first kernel that submits them.
    pub const NONE: CorrId = CorrId(0);

    /// Construct from originating machine and per-kernel sequence
    /// number (sequence 0 is reserved so no real id equals [`CorrId::NONE`]).
    pub fn new(machine: crate::MachineId, seq: u64) -> CorrId {
        debug_assert!(seq > 0 || machine.0 > 0, "corr id 0 is reserved");
        CorrId((u64::from(machine.0) << 48) | (seq & 0xFFFF_FFFF_FFFF))
    }

    /// Whether this id has not been assigned.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this id has been assigned.
    pub const fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Machine that assigned the id.
    pub fn machine(self) -> crate::MachineId {
        // lint:allow(D005 the 48-bit shift leaves exactly 16 bits, so this cast cannot truncate)
        crate::MachineId((self.0 >> 48) as u16)
    }

    /// Per-kernel sequence component.
    pub const fn seq(self) -> u64 {
        self.0 & 0xFFFF_FFFF_FFFF
    }
}

impl fmt::Debug for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "corr:-")
        } else {
            write!(f, "corr:m{}/{}", self.machine().0, self.seq())
        }
    }
}

impl fmt::Display for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineId;

    #[test]
    fn components_roundtrip() {
        let c = CorrId::new(MachineId(3), 41);
        assert_eq!(c.machine(), MachineId(3));
        assert_eq!(c.seq(), 41);
        assert!(c.is_some());
        assert!(CorrId::NONE.is_none());
        assert_eq!(format!("{c}"), "corr:m3/41");
        assert_eq!(format!("{}", CorrId::NONE), "corr:-");
    }
}
