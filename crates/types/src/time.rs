//! Virtual time.
//!
//! The substrate is a discrete-event simulation; all latencies, CPU costs
//! and timeouts are expressed in virtual **microseconds**. Using a newtype
//! (rather than `std::time`) keeps simulated time strictly separated from
//! wall-clock time and makes event ordering explicit and deterministic.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use bytes::{Buf, BufMut};

use crate::wire::{Wire, WireError};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Wire for Time {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        buf.put_u64(self.0);
    }
    fn decode(buf: &mut bytes::Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated("Time"));
        }
        Ok(Time(buf.get_u64()))
    }
    fn wire_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::from_micros(10) + Duration::from_micros(5);
        assert_eq!(t, Time(15));
        assert_eq!(t.since(Time(10)), Duration(5));
        assert_eq!(Time(3).since(Time(10)), Duration::ZERO, "saturating");
        assert_eq!(
            Duration::from_millis(2) + Duration::from_micros(1),
            Duration(2001)
        );
        assert_eq!(Duration::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time(5), Time(1), Time(9)];
        v.sort();
        assert_eq!(v, vec![Time(1), Time(5), Time(9)]);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Time(12)), "12us");
        assert_eq!(format!("{}", Time(1_500)), "1.5ms");
        assert_eq!(format!("{}", Time(2_500_000)), "2.500s");
    }

    #[test]
    fn saturation() {
        assert_eq!(Time(u64::MAX) + Duration(1), Time(u64::MAX));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
        assert_eq!(Duration(5) - Duration(9), Duration::ZERO);
    }

    #[test]
    fn wire_roundtrip() {
        let t = Time(123_456_789);
        assert_eq!(crate::wire::roundtrip(&t).unwrap(), t);
    }
}
