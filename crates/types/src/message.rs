//! Messages and message headers.
//!
//! Every interaction in DEMOS/MP — process-to-process, process-to-server,
//! kernel-to-kernel — is a message sent over a link (§2.1). A message
//! carries a typed payload plus zero or more *links* (this is how
//! capabilities propagate through the system, §2.4).
//!
//! The header records both the destination *address* (copied from the link
//! at send time, so it may carry a stale location hint) and the sender's
//! identity and current machine. The sender machine is what lets a
//! forwarding kernel send the link-update message of §5 back to the
//! sender's kernel.

use core::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::corr::CorrId;
use crate::ids::{MachineId, ProcessAddress, ProcessId};
use crate::link::Link;
use crate::wire::{Wire, WireError};

/// Well-known message type tags.
///
/// Types below [`tags::USER_BASE`] are reserved for the kernel and system
/// protocols; user programs use `USER_BASE + n`.
pub mod tags {
    /// Kernel control operation (payload: [`crate::proto::KernelOp`]);
    /// always sent over a `DELIVERTOKERNEL` link.
    pub const KERNEL_OP: u16 = 0x0001;
    /// Inter-kernel migration protocol (payload: [`crate::proto::MigrateMsg`]).
    pub const MIGRATE: u16 = 0x0002;
    /// Move-data facility (payload: [`crate::proto::MoveDataMsg`]).
    pub const MOVE_DATA: u16 = 0x0003;
    /// Link maintenance (payload: [`crate::proto::LinkMaintMsg`]):
    /// link updates, non-deliverable notices, death notices.
    pub const LINK_MAINT: u16 = 0x0004;
    /// First tag available to system server processes.
    pub const SYS_BASE: u16 = 0x0100;
    /// First tag available to user programs.
    pub const USER_BASE: u16 = 0x1000;
}

/// Header flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgFlags(pub u16);

impl MsgFlags {
    /// No flags.
    pub const NONE: MsgFlags = MsgFlags(0);
    /// Receive by the kernel at the target process's machine (§2.2).
    pub const DELIVER_TO_KERNEL: MsgFlags = MsgFlags(1 << 0);
    /// Message was sent over a one-shot reply link.
    pub const REPLY: MsgFlags = MsgFlags(1 << 1);
    /// Message has passed through at least one forwarding address (§4);
    /// set by the forwarding kernel, used for metrics.
    pub const FORWARDED: MsgFlags = MsgFlags(1 << 2);
    /// Sender is a kernel rather than a process.
    pub const FROM_KERNEL: MsgFlags = MsgFlags(1 << 3);

    /// Union.
    pub const fn union(self, o: MsgFlags) -> MsgFlags {
        MsgFlags(self.0 | o.0)
    }

    /// Test for all bits of `o`.
    pub const fn contains(self, o: MsgFlags) -> bool {
        (self.0 & o.0) == o.0
    }
}

impl core::ops::BitOr for MsgFlags {
    type Output = MsgFlags;
    fn bitor(self, rhs: MsgFlags) -> MsgFlags {
        self.union(rhs)
    }
}

impl fmt::Debug for MsgFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(MsgFlags::DELIVER_TO_KERNEL) {
            parts.push("DTK");
        }
        if self.contains(MsgFlags::REPLY) {
            parts.push("REPLY");
        }
        if self.contains(MsgFlags::FORWARDED) {
            parts.push("FWD");
        }
        if self.contains(MsgFlags::FROM_KERNEL) {
            parts.push("KERN");
        }
        if parts.is_empty() {
            write!(f, "NONE")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// Fixed-size portion of every message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgHeader {
    /// Destination address, copied from the sending link. The location
    /// hint may be stale; the delivery system resolves it (§4).
    pub dest: ProcessAddress,
    /// Sender's immutable process identifier.
    pub src: ProcessId,
    /// Machine where the sender resided at send time. Target of the
    /// link-update message when this message is forwarded (§5).
    pub src_machine: MachineId,
    /// Message type tag (see [`tags`]).
    pub msg_type: u16,
    /// Flag bits.
    pub flags: MsgFlags,
    /// Number of forwarding hops taken so far; incremented by each
    /// forwarding address the message passes through.
    pub hops: u8,
}

impl MsgHeader {
    /// Encoded size: 8 + 6 + 2 + 2 + 2 + 1 = 21 bytes, plus the
    /// link-count byte and 4-byte payload length written by
    /// [`Message::encode`].
    pub const WIRE_LEN: usize = 21;
}

impl Wire for MsgHeader {
    fn encode(&self, buf: &mut BytesMut) {
        self.dest.encode(buf);
        self.src.encode(buf);
        self.src_machine.encode(buf);
        buf.put_u16(self.msg_type);
        buf.put_u16(self.flags.0);
        buf.put_u8(self.hops);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let dest = ProcessAddress::decode(buf)?;
        let src = ProcessId::decode(buf)?;
        let src_machine = MachineId::decode(buf)?;
        if buf.remaining() < 5 {
            return Err(WireError::Truncated("MsgHeader"));
        }
        let msg_type = buf.get_u16();
        let flags = MsgFlags(buf.get_u16());
        let hops = buf.get_u8();
        Ok(MsgHeader {
            dest,
            src,
            src_machine,
            msg_type,
            flags,
            hops,
        })
    }

    fn wire_len(&self) -> usize {
        Self::WIRE_LEN
    }
}

/// Maximum number of links one message may carry.
pub const MAX_CARRIED_LINKS: usize = 16;

/// Maximum payload of a single message (larger transfers use the move-data
/// facility, §2.2).
pub const MAX_PAYLOAD: usize = 8 * 1024;

/// A complete message: header, carried links, payload bytes.
///
/// The correlation id rides alongside the wire fields: it is never
/// encoded (wire sizes stay byte-exact), never compared (a decoded
/// message equals the original), and is re-attached from frame metadata
/// by the receiving transport.
#[derive(Clone, Eq, Debug)]
pub struct Message {
    /// Fixed header.
    pub header: MsgHeader,
    /// Links travelling inside the message (capability passing, §2.4).
    pub links: Vec<Link>,
    /// Typed payload (see [`crate::proto`] for system payloads).
    pub payload: Bytes,
    /// Causal-tracing correlation id ([`CorrId::NONE`] until the first
    /// kernel stamps it). Excluded from the wire encoding and from
    /// equality.
    pub corr: CorrId,
}

impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        self.header == other.header && self.links == other.links && self.payload == other.payload
    }
}

impl Message {
    /// Total encoded size of this message in bytes: what the simulated
    /// network charges for it.
    pub fn wire_size(&self) -> usize {
        MsgHeader::WIRE_LEN + 1 + 4 + self.links.len() * Link::WIRE_LEN + self.payload.len()
    }

    /// Payload length in bytes — the quantity §6 reports for the 6–12-byte
    /// administrative messages.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// First carried link, if any (conventionally the reply link).
    pub fn reply_link(&self) -> Option<Link> {
        self.links.first().copied()
    }
}

impl Wire for Message {
    fn encode(&self, buf: &mut BytesMut) {
        self.header.encode(buf);
        // Out-of-invariant messages (links > u8, payload > u32 — both
        // impossible via the constructors) are clamped to keep the frame
        // wire-consistent, and counted, instead of aborting a kernel
        // mid-protocol.
        let n_links = u8::try_from(self.links.len()).unwrap_or_else(|_| {
            crate::wire::codec_stats::note_clamp();
            u8::MAX
        });
        let payload_len = u32::try_from(self.payload.len()).unwrap_or_else(|_| {
            crate::wire::codec_stats::note_clamp();
            u32::MAX
        });
        buf.put_u8(n_links);
        buf.put_u32(payload_len);
        for l in self.links.iter().take(usize::from(n_links)) {
            l.encode(buf);
        }
        let take = usize::try_from(payload_len)
            .unwrap_or(usize::MAX)
            .min(self.payload.len());
        buf.put_slice(&self.payload[..take]);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let header = MsgHeader::decode(buf)?;
        if buf.remaining() < 5 {
            return Err(WireError::Truncated("Message counts"));
        }
        let n_links = usize::from(buf.get_u8());
        let payload_len = usize::try_from(buf.get_u32()).map_err(|_| WireError::BadLength {
            what: "Message.payload",
            len: usize::MAX,
        })?;
        if n_links > MAX_CARRIED_LINKS {
            return Err(WireError::BadLength {
                what: "Message.links",
                len: n_links,
            });
        }
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::BadLength {
                what: "Message.payload",
                len: payload_len,
            });
        }
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            links.push(Link::decode(buf)?);
        }
        if buf.remaining() < payload_len {
            return Err(WireError::Truncated("Message.payload"));
        }
        let payload = buf.split_to(payload_len);
        Ok(Message {
            header,
            links,
            payload,
            corr: CorrId::NONE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::wire::roundtrip;

    fn header() -> MsgHeader {
        MsgHeader {
            dest: ProcessId {
                creating_machine: MachineId(1),
                local_uid: 5,
            }
            .at(MachineId(2)),
            src: ProcessId {
                creating_machine: MachineId(3),
                local_uid: 9,
            },
            src_machine: MachineId(3),
            msg_type: tags::USER_BASE + 1,
            flags: MsgFlags::NONE,
            hops: 0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        assert_eq!(h.wire_len(), MsgHeader::WIRE_LEN);
        assert_eq!(roundtrip(&h).unwrap(), h);
    }

    #[test]
    fn message_roundtrip_with_links() {
        let addr = ProcessId {
            creating_machine: MachineId(4),
            local_uid: 2,
        }
        .at(MachineId(4));
        let m = Message {
            header: header(),
            links: vec![Link::to(addr).reply(), Link::deliver_to_kernel(addr)],
            payload: Bytes::from_static(b"hello demos"),
            corr: CorrId::new(MachineId(3), 1),
        };
        let back = roundtrip(&m).unwrap();
        assert_eq!(back, m);
        assert!(back.reply_link().unwrap().is_reply());
    }

    #[test]
    fn wire_size_matches_encoding() {
        let addr = ProcessId {
            creating_machine: MachineId(4),
            local_uid: 2,
        }
        .at(MachineId(4));
        let m = Message {
            header: header(),
            links: vec![Link::to(addr)],
            payload: Bytes::from_static(&[0u8; 100]),
            corr: CorrId::NONE,
        };
        assert_eq!(m.wire_size(), m.to_bytes().len());
    }

    #[test]
    fn oversized_payload_rejected_on_decode() {
        let mut buf = BytesMut::new();
        header().encode(&mut buf);
        buf.put_u8(0);
        buf.put_u32((MAX_PAYLOAD + 1) as u32);
        let mut b = buf.freeze();
        assert!(Message::decode(&mut b).is_err());
    }

    #[test]
    fn too_many_links_rejected_on_decode() {
        let mut buf = BytesMut::new();
        header().encode(&mut buf);
        buf.put_u8((MAX_CARRIED_LINKS + 1) as u8);
        buf.put_u32(0);
        let mut b = buf.freeze();
        assert!(Message::decode(&mut b).is_err());
    }

    #[test]
    fn flags_debug() {
        let f = MsgFlags::DELIVER_TO_KERNEL | MsgFlags::FORWARDED;
        assert_eq!(format!("{f:?}"), "DTK|FWD");
    }
}
