//! Property tests: every wire codec round-trips for arbitrary values, and
//! decoding arbitrary garbage never panics.

use bytes::Bytes;
use demos_types::proto::{AreaSel, KernelOp, LinkMaintMsg, MigrateMsg, MoveDataMsg, RejectReason};
use demos_types::{
    DataArea, Link, LinkAttrs, MachineId, Message, MsgFlags, MsgHeader, ProcessAddress, ProcessId,
    Wire,
};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineId> {
    any::<u16>().prop_map(MachineId)
}

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (arb_machine(), any::<u32>()).prop_map(|(creating_machine, local_uid)| ProcessId {
        creating_machine,
        local_uid,
    })
}

fn arb_addr() -> impl Strategy<Value = ProcessAddress> {
    (arb_machine(), arb_pid()).prop_map(|(m, pid)| pid.at(m))
}

fn arb_link() -> impl Strategy<Value = Link> {
    (
        arb_addr(),
        any::<u8>(),
        proptest::option::of((any::<u32>(), any::<u32>())),
    )
        .prop_map(|(addr, attr_bits, area)| {
            // Mask to the defined attribute bits, excluding HAS_AREA which the
            // codec derives from `area`.
            let attrs = LinkAttrs(attr_bits as u16 & 0b1111);
            Link {
                addr,
                attrs,
                area: area.map(|(offset, len)| DataArea { offset, len }),
            }
        })
}

fn arb_header() -> impl Strategy<Value = MsgHeader> {
    (
        arb_addr(),
        arb_pid(),
        arb_machine(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(
            |(dest, src, src_machine, msg_type, flags, hops)| MsgHeader {
                dest,
                src,
                src_machine,
                msg_type,
                flags: MsgFlags(flags),
                hops,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_header(),
        proptest::collection::vec(arb_link(), 0..8),
        proptest::collection::vec(any::<u8>(), 0..512),
        any::<u64>(),
    )
        .prop_map(|(header, links, payload, corr)| Message {
            header,
            links,
            payload: Bytes::from(payload),
            corr: demos_types::CorrId(corr),
        })
}

proptest! {
    #[test]
    fn pid_roundtrip(pid in arb_pid()) {
        prop_assert_eq!(demos_types::wire::roundtrip(&pid).unwrap(), pid);
    }

    #[test]
    fn addr_roundtrip_and_len(addr in arb_addr()) {
        prop_assert_eq!(demos_types::wire::roundtrip(&addr).unwrap(), addr);
        prop_assert_eq!(addr.wire_len(), 8);
    }

    #[test]
    fn link_roundtrip(link in arb_link()) {
        let back = demos_types::wire::roundtrip(&link).unwrap();
        prop_assert_eq!(back.addr, link.addr);
        prop_assert_eq!(back.area, link.area);
        // HAS_AREA is normalized by the codec; all other bits survive.
        prop_assert_eq!(
            back.attrs.without(LinkAttrs::HAS_AREA).0,
            link.attrs.without(LinkAttrs::HAS_AREA).0
        );
        prop_assert_eq!(back.wire_len(), Link::WIRE_LEN);
    }

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let back = demos_types::wire::roundtrip(&msg).unwrap();
        prop_assert_eq!(back.header, msg.header);
        prop_assert_eq!(back.links.len(), msg.links.len());
        prop_assert_eq!(msg.wire_size(), msg.to_bytes().len());
        prop_assert_eq!(&back.payload, &msg.payload);
        // The correlation id never crosses the wire: whatever id the
        // original carried, the decoded message is unstamped and the
        // encoding is identical to an unstamped message's.
        prop_assert!(back.corr.is_none());
        let unstamped = Message { corr: demos_types::CorrId::NONE, ..msg.clone() };
        prop_assert_eq!(msg.to_bytes(), unstamped.to_bytes());
    }

    #[test]
    fn decode_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut b = Bytes::from(data);
        let _ = Message::decode(&mut b.clone());
        let _ = MigrateMsg::decode(&mut b.clone());
        let _ = MoveDataMsg::decode(&mut b.clone());
        let _ = LinkMaintMsg::decode(&mut b.clone());
        let _ = KernelOp::decode(&mut b);
    }

    #[test]
    fn migrate_msg_roundtrip(
        ctx in any::<u16>(),
        pid in arb_pid(),
        a in any::<u16>(), b in any::<u16>(), c in any::<u32>(),
    ) {
        let m = MigrateMsg::Offer { ctx, pid, resident_len: a, swappable_len: b, image_len: c };
        prop_assert_eq!(demos_types::wire::roundtrip(&m).unwrap(), m);
        let m = MigrateMsg::Reject { ctx, pid, reason: RejectReason::Capacity };
        prop_assert_eq!(demos_types::wire::roundtrip(&m).unwrap(), m);
    }

    #[test]
    fn move_data_roundtrip(op in any::<u16>(), pid in arb_pid(), off in any::<u32>(), len in any::<u32>()) {
        for sel in [AreaSel::LinkArea, AreaSel::Resident, AreaSel::Swappable, AreaSel::Image] {
            let m = MoveDataMsg::ReadReq { op, target: pid, sel, offset: off, len };
            prop_assert_eq!(demos_types::wire::roundtrip(&m).unwrap(), m);
        }
    }
}
