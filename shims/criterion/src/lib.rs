//! In-tree, dependency-free replacement for the subset of the
//! [`criterion`] crate this workspace's benches use. Each benchmark is
//! timed with `std::time::Instant` over a fixed number of samples and
//! the mean/min per-iteration time is printed — no statistics engine,
//! no HTML reports, but the benches compile and run offline.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measures one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample mean iteration times, collected for the report.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::new(),
        }
    }

    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count to ~2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.times.push(start.elapsed() / iters);
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.times.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.times.iter().min().unwrap();
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                let mib_s = n as f64 / min.as_secs_f64() / (1 << 20) as f64;
                format!("  {mib_s:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = n as f64 / min.as_secs_f64();
                format!("  {elem_s:10.0} elem/s")
            }
            None => String::new(),
        };
        println!("{id:<40} min {min:>10.2?}  mean {mean:>10.2?}{rate}");
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            name,
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(&id.to_string(), None);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
