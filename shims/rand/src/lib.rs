//! In-tree, dependency-free replacement for the subset of the [`rand`]
//! crate this workspace uses: a seedable deterministic generator
//! ([`rngs::StdRng`]) plus the [`Rng`]/[`SeedableRng`] traits.
//!
//! Determinism is a feature here, not an accident: the simulator's
//! replay tests require that the same seed yields the same frame-loss
//! decisions on every platform, so the generator is a fixed splitmix64
//! rather than a platform-dependent source.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]

/// Random generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still consume one draw so the stream position is
            // independent of `p`, like a real Bernoulli sampler.
            let _ = self.next_u64();
            return true;
        }
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64).
    ///
    /// Not the real crate's ChaCha-based `StdRng` — this shim trades
    /// cryptographic quality for zero dependencies; statistical quality
    /// is ample for loss coin-flips and jitter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush, one
            // add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
