//! In-tree, dependency-free replacement for the subset of the [`bytes`]
//! crate this workspace uses: cheaply-cloneable immutable [`Bytes`]
//! views, a growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`]
//! cursor traits (big-endian accessors only — the wire codec is
//! big-endian throughout).
//!
//! The build environment has no network access, so external crates are
//! replaced by shims that keep the public surface source-compatible.
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones share the same backing allocation; [`Bytes::slice`] and
/// [`Bytes::split_to`] produce zero-copy sub-views.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // Arc::from copies; for a shim that is fine — semantics match.
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a fresh `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view over `range` (indices relative to this view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} of {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer; freeze into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// New empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend)
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.buf)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter)
    }
}

/// Read cursor over a contiguous byte source. Integer reads are
/// big-endian, matching the wire codec.
///
/// Panics on underflow, like the real crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance out of bounds: {cnt} of {}",
            self.len()
        );
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte sink. Integer writes are
/// big-endian, matching the wire codec.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0102_0304_0506_0708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
        assert_eq!(b.len(), 6, "original untouched");
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_printable() {
        let b = Bytes::from_static(b"ok\x01");
        assert_eq!(format!("{b:?}"), "b\"ok\\x01\"");
    }
}
