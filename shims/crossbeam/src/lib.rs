//! In-tree, dependency-free replacement for the subset of the
//! [`crossbeam`] crate this workspace uses: MPSC channels (backed by
//! `std::sync::mpsc`) and a polling [`select!`] macro.
//!
//! Differences from the real crate, acceptable for the native-mode
//! runtime that is this shim's only consumer:
//!
//! * `Receiver` is not `Clone` (no MPMC);
//! * `select!` polls with a short sleep instead of parking on OS
//!   primitives, so its wake-up latency is up to ~200 µs.
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

#![forbid(unsafe_code)]

/// Channel types and constructors, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    // Re-export so `crossbeam::channel::select!` resolves like the real
    // crate's path.
    pub use crate::select;

    /// Sending half of a channel. Clonable (MPSC).
    pub struct Sender<T>(Kind<T>);

    enum Kind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Kind::Unbounded(tx) => Kind::Unbounded(tx.clone()),
                Kind::Bounded(tx) => Kind::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking if the channel is bounded and full.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Kind::Unbounded(tx) => tx.send(t),
                Kind::Bounded(tx) => tx.send(t),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Kind::Unbounded(tx)), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Kind::Bounded(tx)), Receiver(rx))
    }
}

/// Wait on several receivers at once, with a timeout arm.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// select! {
///     recv(rx_a) -> msg => { ... }
///     recv(rx_b) -> msg => { ... }
///     default(timeout) => { ... }
/// }
/// ```
///
/// Each `msg` binds a `Result<T, RecvError>` like the real crate. The
/// implementation polls `try_recv` on each arm and sleeps briefly
/// between rounds until the deadline passes.
#[macro_export]
macro_rules! select {
    (
        $(recv($rx:expr) -> $res:pat => $body:block)+
        default($timeout:expr) => $def:block
    ) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        loop {
            $(
                match $rx.try_recv() {
                    Err($crate::channel::TryRecvError::Empty) => {}
                    __r => {
                        let $res = __r.map_err(|_| $crate::channel::RecvError);
                        { $body }
                        break;
                    }
                }
            )+
            if ::std::time::Instant::now() >= __deadline {
                { $def }
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn bounded_reply_pattern() {
        let (tx, rx) = bounded(1);
        std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
    }

    #[test]
    fn select_picks_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(7).unwrap();
        let mut got = None;
        crate::select! {
            recv(rx_a) -> v => { got = Some(v); }
            recv(rx_b) -> v => { got = Some(v); }
            default(Duration::from_millis(10)) => {}
        }
        assert_eq!(got, Some(Ok(7)));
    }

    #[test]
    fn select_times_out_and_reports_disconnect() {
        let (_tx, rx) = unbounded::<u32>();
        let mut timed_out = false;
        let mut fired = false;
        crate::select! {
            recv(rx) -> _v => { fired = true; }
            default(Duration::from_millis(5)) => { timed_out = true; }
        }
        assert!(timed_out && !fired);

        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        let mut seen: Option<Result<u32, RecvError>> = None;
        crate::select! {
            recv(rx) -> v => { seen = Some(v); }
            default(Duration::from_millis(5)) => {}
        }
        assert_eq!(seen, Some(Err(RecvError)));
    }
}
