//! In-tree, dependency-free replacement for the subset of the
//! [`proptest`] crate this workspace uses. The `proptest!` macro here
//! expands each property into a plain `#[test]` that runs the body over
//! deterministically seeded random inputs (seed derived from the test's
//! module path and name, so every run and every machine explores the
//! same cases).
//!
//! Differences from the real crate, acceptable for offline CI:
//!
//! * no shrinking — a failing case panics with its case index so it can
//!   be re-run, but is not minimized;
//! * no persistence files; the case stream is fixed per test name;
//! * `ProptestConfig` carries only `cases`.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

/// Strategy trait, combinators and primitive strategies.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Deterministic generator state handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// New generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy for "any value of `T`" — see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The full range of `T`: `any::<u32>()`, `any::<bool>()`, …
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Vector of `element` values with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(value)` about half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// FNV-1a over the test's identifier — a stable per-test base seed.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Define property tests. Each `fn` becomes a `#[test]` running its
/// body over `cases` deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __base = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::strategy::TestRng::new(
                        __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality within a property body (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality within a property body (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn double() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 3u16..5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((3..5).contains(&w));
        }

        #[test]
        fn combinators_compose(
            pair in (double(), any::<bool>()),
            xs in crate::collection::vec(0u8..10, 1..6),
            opt in crate::option::of(0u32..4),
        ) {
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
            if let Some(o) = opt { prop_assert!(o < 4); }
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::__seed_for("a::b"), crate::__seed_for("a::b"));
        assert_ne!(crate::__seed_for("a::b"), crate::__seed_for("a::c"));
    }
}
