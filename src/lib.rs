//! # demos-mp — Process Migration in DEMOS/MP, reproduced in Rust
//!
//! A from-scratch reproduction of *Process Migration in DEMOS/MP*
//! (Michael L. Powell and Barton P. Miller, SOSP 1983): a message-based
//! distributed operating-system kernel with location-transparent *links*,
//! plus the paper's contribution — moving a live process between
//! processors with continuous, transparent message delivery via
//! *forwarding addresses* and lazy *link updating*.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`types`] | ids, addresses, links, messages, byte-exact wire codec |
//! | [`net`] | simulated network: topology, routing, reliable channels |
//! | [`kernel`] | per-processor kernel: processes, delivery, move-data |
//! | [`core`] | the migration engine (8-step protocol of §3.1) |
//! | [`sysproc`] | switchboard, process manager, memory scheduler, fs ×4, shell |
//! | [`policy`] | decision rules: load balance, affinity, evacuation |
//! | [`sim`] | deterministic discrete-event harness, workloads, metrics |
//! | [`obs`] | observability: HDR histograms, flight recorder, phase tables |
//!
//! ## Quickstart
//!
//! ```
//! use demos_mp::sim::prelude::*;
//! use demos_mp::sim::programs::PingPong;
//!
//! // Three machines on a full mesh.
//! let mut cluster = Cluster::mesh(3);
//!
//! // Two processes rallying a message back and forth across machines.
//! let pa = cluster
//!     .spawn(MachineId(0), "pingpong", &PingPong::state(0, 50), ImageLayout::default())
//!     .unwrap();
//! let pb = cluster
//!     .spawn(MachineId(1), "pingpong", &PingPong::state(0, 50), ImageLayout::default())
//!     .unwrap();
//! let (la, lb) = (cluster.link_to(pa).unwrap(), cluster.link_to(pb).unwrap());
//! cluster.post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb]).unwrap();
//! cluster.post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la]).unwrap();
//! cluster.run_for(Duration::from_millis(100));
//!
//! // Migrate one end mid-conversation; the rally continues transparently.
//! cluster.migrate(pb, MachineId(2)).unwrap();
//! cluster.run_for(Duration::from_millis(300));
//! assert_eq!(cluster.where_is(pb), Some(MachineId(2)));
//! ```

#![forbid(unsafe_code)]

pub use demos_core as core;
pub use demos_kernel as kernel;
pub use demos_net as net;
pub use demos_obs as obs;
pub use demos_policy as policy;
pub use demos_rt as rt;
pub use demos_sim as sim;
pub use demos_sysproc as sysproc;
pub use demos_types as types;
